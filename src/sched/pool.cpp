//===--- pool.cpp - Parallel proof scheduler worker pool --------------------===//

#include "sched/pool.h"

#include <algorithm>
#include <cerrno>
#include <chrono>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

using namespace dryad;

bool WarmFleet::take(unsigned P, WarmWorker &Out) {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<WarmWorker> &Part = Parts[P % Parts.size()];
  while (!Part.empty()) {
    WarmWorker W = std::move(Part.back());
    Part.pop_back();
    if (W.usable()) {
      Out = std::move(W);
      return true;
    }
    retireWarmWorker(W); // died while parked; reap, try the next one
  }
  return false;
}

void WarmFleet::put(unsigned P, WarmWorker &&W) {
  if (!W.usable()) {
    retireWarmWorker(W);
    return;
  }
  std::lock_guard<std::mutex> L(Mu);
  Parts[P % Parts.size()].push_back(std::move(W));
}

void WarmFleet::retireAll() {
  std::lock_guard<std::mutex> L(Mu);
  for (std::vector<WarmWorker> &Part : Parts) {
    for (WarmWorker &W : Part)
      retireWarmWorker(W);
    Part.clear();
  }
}

size_t WarmFleet::idleCount() const {
  std::lock_guard<std::mutex> L(Mu);
  size_t N = 0;
  for (const std::vector<WarmWorker> &Part : Parts)
    N += Part.size();
  return N;
}

/// The per-backend stats key for a request: the backend-spec name with any
/// ":path" suffix dropped; the empty wire field means the in-process Z3 API.
static std::string statsBackend(const SandboxRequest &Req) {
  if (Req.Backend.empty())
    return "z3";
  size_t Colon = Req.Backend.find(':');
  return Colon == std::string::npos ? Req.Backend : Req.Backend.substr(0, Colon);
}

/// Folds one completed request into the per-backend counter slice.
static void countBackendResult(PoolStats &Stats, const std::string &Backend,
                               const SmtResult &R) {
  PoolStats::BackendStat &B = Stats.Backends[Backend];
  ++B.Served;
  if (R.Status == SmtStatus::Unknown &&
      (R.Failure == FailureKind::SolverCrash ||
       R.Failure == FailureKind::ResourceOut))
    ++B.Crashes;
}

Scheduler::Scheduler(unsigned Jobs, WarmPoolOptions Warm, WarmFleet *F,
                     unsigned P)
    : Slots(Jobs == 0 ? 1 : Jobs), Opts(Warm), Fleet(F), Partition(P) {
  // The abort self-pipe: requestAbort() writes a byte, the poll loop wakes.
  // Non-blocking both ends so neither side can ever wedge on it.
  if (pipe(AbortPipe) == 0) {
    fcntl(AbortPipe[0], F_SETFL, O_NONBLOCK);
    fcntl(AbortPipe[1], F_SETFL, O_NONBLOCK);
  } else {
    AbortPipe[0] = AbortPipe[1] = -1;
  }
}

Scheduler::~Scheduler() {
  // Abandoned run (exception unwound through run(), or run() never called):
  // never leave zombies or orphaned solvers behind.
  for (RunningTask &T : Active) {
    if (T.Warm) {
      killWarmWorker(T.WW, /*AtDeadline=*/false);
      finishWarmRequest(T.WW);
    } else {
      killWorker(T.W, /*AtDeadline=*/false);
      finishWorker(T.W);
    }
  }
  for (WarmWorker &WW : Idle) {
    // Survivors go back to the shared fleet for the next scheduler on this
    // partition; without a fleet the historical retire applies.
    if (Fleet)
      Fleet->put(Partition, std::move(WW));
    else
      retireWarmWorker(WW);
  }
  if (AbortPipe[0] >= 0)
    close(AbortPipe[0]);
  if (AbortPipe[1] >= 0)
    close(AbortPipe[1]);
}

void Scheduler::requestAbort() {
  AbortFlag.store(true, std::memory_order_release);
  if (AbortPipe[1] >= 0) {
    char C = 1;
    // Best effort: a full pipe means a wake-up is already pending.
    [[maybe_unused]] ssize_t N = write(AbortPipe[1], &C, 1);
  }
}

void Scheduler::abortNow(AbortCause C) {
  Cause = C;
  for (RunningTask &T : Active) {
    if (T.Warm) {
      // Killed mid-solve: the worker's pipe may carry a partial answer, so
      // it can never be reused. Reap and count, like a cancel().
      killWarmWorker(T.WW, /*AtDeadline=*/false);
      finishWarmRequest(T.WW);
      ++Stats.RecycledCrash;
    } else {
      killWorker(T.W, /*AtDeadline=*/false);
      finishWorker(T.W);
    }
  }
  Active.clear();
  Pending.clear();
}

TaskId Scheduler::submit(SandboxRequest Req, Completion Done, OnStart Start) {
  TaskId Id = NextId++;
  Pending.push_back({Id, std::move(Req), std::move(Done), std::move(Start)});
  return Id;
}

TaskId Scheduler::submitFront(SandboxRequest Req, Completion Done,
                              OnStart Start) {
  TaskId Id = NextId++;
  Pending.push_front({Id, std::move(Req), std::move(Done), std::move(Start)});
  return Id;
}

bool Scheduler::cancel(TaskId Id) {
  for (auto It = Pending.begin(); It != Pending.end(); ++It)
    if (It->Id == Id) {
      Pending.erase(It);
      return true;
    }
  for (auto It = Active.begin(); It != Active.end(); ++It)
    if (It->Id == Id) {
      if (It->Warm) {
        // A cancelled warm worker cannot be reused: its pipe may still
        // carry the killed request's partial answer. Kill, reap, replace.
        killWarmWorker(It->WW, /*AtDeadline=*/false);
        finishWarmRequest(It->WW); // reap; result deliberately discarded
        ++Stats.RecycledCrash;
      } else {
        killWorker(It->W, /*AtDeadline=*/false);
        finishWorker(It->W); // reap; the result is deliberately discarded
      }
      Active.erase(It);
      return true;
    }
  return false;
}

WarmWorker Scheduler::acquireWarmWorker() {
  if (!Idle.empty()) {
    WarmWorker WW = std::move(Idle.back());
    Idle.pop_back();
    return WW;
  }
  // Our own idle set is empty: lease a parked survivor from the fleet
  // partition before paying for a fork — the cross-request amortization.
  WarmWorker WW;
  if (Fleet && Fleet->take(Partition, WW))
    return WW;
  WW = spawnWarmWorker();
  if (!WW.SpawnFailed)
    ++Stats.WarmSpawns;
  return WW;
}

void Scheduler::recycleOrRetain(WarmWorker &&WW, const SmtResult &R) {
  if (!WW.usable()) {
    // Already dead and reaped by finishWarmRequest (crash, deadline kill,
    // rlimit death, torn frame).
    ++Stats.RecycledCrash;
    return;
  }
  if (R.Status == SmtStatus::Unknown) {
    // Any non-verdict answer — in-solver timeout, resource trouble the
    // worker survived, lowering error — is grounds for a fresh process:
    // whatever state the solver left behind is not worth trusting.
    retireWarmWorker(WW);
    ++Stats.RecycledCrash;
    return;
  }
  if (Opts.RecycleAfter != 0 && WW.Served >= Opts.RecycleAfter) {
    retireWarmWorker(WW);
    ++Stats.RecycledCount;
    return;
  }
  size_t HighWaterKb = Opts.RssHighWaterKb;
  if (HighWaterKb == 0 && WW.MemLimitMb != 0)
    HighWaterKb = static_cast<size_t>(WW.MemLimitMb) * 1024 * 3 / 4;
  if (HighWaterKb != 0 && WW.RssKb > HighWaterKb) {
    retireWarmWorker(WW);
    ++Stats.RecycledRss;
    return;
  }
  Idle.push_back(std::move(WW));
}

void Scheduler::fill() {
  while (Active.size() < Slots && !Pending.empty()) {
    PendingTask T = std::move(Pending.front());
    Pending.pop_front();
    if (T.Start)
      T.Start(); // queued work becomes running work right here

    if (!Opts.Warm) {
      WorkerHandle W = spawnWorker(T.Req);
      ++Stats.ColdSpawns;
      if (W.SpawnFailed) {
        // fork/pipe exhaustion: classify and complete right here. The
        // completion may re-submit (the retry ladder treats this as a
        // SolverCrash), which lands back in Pending for the next fill pass.
        --Stats.ColdSpawns;
        SmtResult R = finishWorker(W);
        ++Stats.Served;
        Stats.SolveSeconds += R.Seconds;
        countBackendResult(Stats, statsBackend(T.Req), R);
        T.Done(R);
        continue;
      }
      RunningTask RT;
      RT.Id = T.Id;
      RT.Warm = false;
      RT.W = std::move(W);
      RT.Done = std::move(T.Done);
      RT.Backend = statsBackend(T.Req);
      Active.push_back(std::move(RT));
      continue;
    }

    WarmWorker WW = acquireWarmWorker();
    if (!WW.SpawnFailed && !startWarmRequest(WW, T.Req)) {
      // The leased worker died while idle (EPIPE on the request write).
      // Reap it and retry once on a guaranteed-fresh fork before giving up.
      finishWarmRequest(WW); // classification of an idle death: discarded
      ++Stats.RecycledCrash;
      WW = spawnWarmWorker();
      if (!WW.SpawnFailed) {
        ++Stats.WarmSpawns;
        startWarmRequest(WW, T.Req);
      }
    }
    if (WW.SpawnFailed || !WW.running()) {
      // fork/pipe exhaustion, or even the fresh fork's pipe broke:
      // classify and complete right here, like a cold spawn failure.
      SmtResult R = finishWarmRequest(WW);
      ++Stats.Served;
      Stats.SolveSeconds += R.Seconds;
      countBackendResult(Stats, statsBackend(T.Req), R);
      T.Done(R);
      continue;
    }
    RunningTask RT;
    RT.Id = T.Id;
    RT.Warm = true;
    RT.WW = std::move(WW);
    RT.Done = std::move(T.Done);
    RT.Backend = statsBackend(T.Req);
    Active.push_back(std::move(RT));
  }
}

void Scheduler::run() {
  std::vector<pollfd> PFs;
  std::vector<RunningTask> Finished;
  for (;;) {
    if (AbortFlag.load(std::memory_order_acquire)) {
      abortNow(Cause == AbortCause::None ? AbortCause::External : Cause);
      return;
    }
    fill();
    if (Active.empty()) {
      if (Pending.empty())
        return;
      continue; // spawn-failure completions re-queued work
    }

    // One poll over every live worker, bounded by the nearest deadline.
    PFs.clear();
    int PollMs = -1;
    auto Now = std::chrono::steady_clock::now();
    for (const RunningTask &T : Active) {
      pollfd PF;
      PF.fd = T.Warm ? T.WW.FromFd : T.W.Fd;
      PF.events = POLLIN;
      PF.revents = 0;
      PFs.push_back(PF);
      bool HasDeadline = T.Warm ? T.WW.HasDeadline : T.W.HasDeadline;
      if (HasDeadline) {
        auto Deadline = T.Warm ? T.WW.Deadline : T.W.Deadline;
        auto Remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                          Deadline - Now)
                          .count();
        int Ms = Remain <= 0 ? 0 : static_cast<int>(Remain);
        if (PollMs < 0 || Ms < PollMs)
          PollMs = Ms;
      }
    }
    // The abort sources ride in the same poll: the self-pipe (cross-thread
    // requestAbort), the watched client fd (EOF = the client hung up
    // mid-solve), and the per-request wall deadline.
    size_t Workers = PFs.size();
    size_t AbortIdx = SIZE_MAX, WatchIdx = SIZE_MAX;
    if (AbortPipe[0] >= 0) {
      AbortIdx = PFs.size();
      PFs.push_back({AbortPipe[0], POLLIN, 0});
    }
    if (WatchFd >= 0) {
      WatchIdx = PFs.size();
      PFs.push_back({WatchFd, POLLIN, 0});
    }
    if (HasAbortDeadline) {
      auto Remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                        AbortDeadline - Now)
                        .count();
      int Ms = Remain <= 0 ? 0 : static_cast<int>(Remain);
      if (PollMs < 0 || Ms < PollMs)
        PollMs = Ms;
    }
    int PR = poll(PFs.data(), PFs.size(), PollMs);
    if (PR < 0 && errno == EINTR)
      continue;

    if (AbortIdx != SIZE_MAX && (PFs[AbortIdx].revents & POLLIN)) {
      abortNow(AbortCause::External);
      return;
    }
    if (WatchIdx != SIZE_MAX &&
        (PFs[WatchIdx].revents & (POLLIN | POLLHUP | POLLERR))) {
      // The client has nothing legitimate to say between request and
      // response: readable means EOF (it hung up) or stray bytes we drain
      // and ignore. Either way an error/EOF cancels its whole request.
      char Junk[4096];
      ssize_t N = read(WatchFd, Junk, sizeof(Junk));
      if (N <= 0 && !(N < 0 && (errno == EAGAIN || errno == EINTR))) {
        abortNow(AbortCause::ClientGone);
        return;
      }
    }
    if (HasAbortDeadline &&
        std::chrono::steady_clock::now() >= AbortDeadline) {
      abortNow(AbortCause::Deadline);
      return;
    }

    // Drain readable pipes, then fire any expired deadlines.
    for (size_t I = 0; I != Workers; ++I)
      if (PFs[I].revents & (POLLIN | POLLHUP | POLLERR)) {
        if (Active[I].Warm)
          pumpWarmWorker(Active[I].WW);
        else
          pumpWorker(Active[I].W);
      }
    Now = std::chrono::steady_clock::now();
    for (RunningTask &T : Active) {
      if (T.Warm) {
        if (T.WW.running() && T.WW.HasDeadline && Now >= T.WW.Deadline)
          killWarmWorker(T.WW, /*AtDeadline=*/true);
      } else {
        if (!T.W.Eof && T.W.HasDeadline && Now >= T.W.Deadline)
          killWorker(T.W, /*AtDeadline=*/true);
      }
    }

    // Extract finished workers *before* running completions: a completion
    // may submit new tasks or cancel running siblings, both of which
    // mutate the active list. Classification order is submission order
    // among the workers that finished in this poll round, so completion
    // order is deterministic given worker fates.
    Finished.clear();
    for (auto It = Active.begin(); It != Active.end();) {
      bool Done = It->Warm ? !It->WW.running()
                           : (It->W.Eof || It->W.KilledByDeadline);
      if (Done) {
        Finished.push_back(std::move(*It));
        It = Active.erase(It);
      } else {
        ++It;
      }
    }
    for (RunningTask &T : Finished) {
      SmtResult R =
          T.Warm ? finishWarmRequest(T.WW) : finishWorker(T.W);
      ++Stats.Served;
      Stats.SolveSeconds += R.Seconds;
      countBackendResult(Stats, T.Backend, R);
      if (T.Warm)
        recycleOrRetain(std::move(T.WW), R);
      T.Done(R);
    }
  }
}
