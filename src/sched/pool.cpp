//===--- pool.cpp - Parallel proof scheduler worker pool --------------------===//

#include "sched/pool.h"

#include <algorithm>
#include <cerrno>
#include <chrono>

#include <poll.h>

using namespace dryad;

Scheduler::Scheduler(unsigned Jobs) : Slots(Jobs == 0 ? 1 : Jobs) {}

Scheduler::~Scheduler() {
  // Abandoned run (exception unwound through run(), or run() never called):
  // never leave zombies or orphaned solvers behind.
  for (RunningTask &T : Active) {
    killWorker(T.W, /*AtDeadline=*/false);
    finishWorker(T.W);
  }
}

TaskId Scheduler::submit(SandboxRequest Req, Completion Done, OnStart Start) {
  TaskId Id = NextId++;
  Pending.push_back({Id, std::move(Req), std::move(Done), std::move(Start)});
  return Id;
}

TaskId Scheduler::submitFront(SandboxRequest Req, Completion Done,
                              OnStart Start) {
  TaskId Id = NextId++;
  Pending.push_front({Id, std::move(Req), std::move(Done), std::move(Start)});
  return Id;
}

bool Scheduler::cancel(TaskId Id) {
  for (auto It = Pending.begin(); It != Pending.end(); ++It)
    if (It->Id == Id) {
      Pending.erase(It);
      return true;
    }
  for (auto It = Active.begin(); It != Active.end(); ++It)
    if (It->Id == Id) {
      killWorker(It->W, /*AtDeadline=*/false);
      finishWorker(It->W); // reap; the result is deliberately discarded
      Active.erase(It);
      return true;
    }
  return false;
}

void Scheduler::fill() {
  while (Active.size() < Slots && !Pending.empty()) {
    PendingTask T = std::move(Pending.front());
    Pending.pop_front();
    if (T.Start)
      T.Start(); // queued work becomes running work right here
    WorkerHandle W = spawnWorker(T.Req);
    if (W.SpawnFailed) {
      // fork/pipe exhaustion: classify and complete right here. The
      // completion may re-submit (the retry ladder treats this as a
      // SolverCrash), which lands back in Pending for the next fill pass.
      SmtResult R = finishWorker(W);
      T.Done(R);
      continue;
    }
    Active.push_back({T.Id, std::move(W), std::move(T.Done)});
  }
}

void Scheduler::run() {
  std::vector<pollfd> PFs;
  std::vector<RunningTask> Finished;
  for (;;) {
    fill();
    if (Active.empty()) {
      if (Pending.empty())
        return;
      continue; // spawn-failure completions re-queued work
    }

    // One poll over every live worker, bounded by the nearest deadline.
    PFs.clear();
    int PollMs = -1;
    auto Now = std::chrono::steady_clock::now();
    for (const RunningTask &T : Active) {
      pollfd PF;
      PF.fd = T.W.Fd;
      PF.events = POLLIN;
      PF.revents = 0;
      PFs.push_back(PF);
      if (T.W.HasDeadline) {
        auto Remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                          T.W.Deadline - Now)
                          .count();
        int Ms = Remain <= 0 ? 0 : static_cast<int>(Remain);
        if (PollMs < 0 || Ms < PollMs)
          PollMs = Ms;
      }
    }
    int PR = poll(PFs.data(), PFs.size(), PollMs);
    if (PR < 0 && errno == EINTR)
      continue;

    // Drain readable pipes, then fire any expired deadlines.
    for (size_t I = 0; I != Active.size(); ++I)
      if (PFs[I].revents & (POLLIN | POLLHUP | POLLERR))
        pumpWorker(Active[I].W);
    Now = std::chrono::steady_clock::now();
    for (RunningTask &T : Active)
      if (!T.W.Eof && T.W.HasDeadline && Now >= T.W.Deadline)
        killWorker(T.W, /*AtDeadline=*/true);

    // Extract finished workers *before* running completions: a completion
    // may submit new tasks or cancel running siblings, both of which
    // mutate the active list. Classification order is submission order
    // among the workers that finished in this poll round, so completion
    // order is deterministic given worker fates.
    Finished.clear();
    for (auto It = Active.begin(); It != Active.end();)
      if (It->W.Eof || It->W.KilledByDeadline) {
        Finished.push_back(std::move(*It));
        It = Active.erase(It);
      } else {
        ++It;
      }
    for (RunningTask &T : Finished) {
      SmtResult R = finishWorker(T.W);
      T.Done(R);
    }
  }
}
