//===--- pool.cpp - Parallel proof scheduler worker pool --------------------===//

#include "sched/pool.h"

#include <algorithm>
#include <cerrno>
#include <chrono>

#include <poll.h>

using namespace dryad;

/// The per-backend stats key for a request: the backend-spec name with any
/// ":path" suffix dropped; the empty wire field means the in-process Z3 API.
static std::string statsBackend(const SandboxRequest &Req) {
  if (Req.Backend.empty())
    return "z3";
  size_t Colon = Req.Backend.find(':');
  return Colon == std::string::npos ? Req.Backend : Req.Backend.substr(0, Colon);
}

/// Folds one completed request into the per-backend counter slice.
static void countBackendResult(PoolStats &Stats, const std::string &Backend,
                               const SmtResult &R) {
  PoolStats::BackendStat &B = Stats.Backends[Backend];
  ++B.Served;
  if (R.Status == SmtStatus::Unknown &&
      (R.Failure == FailureKind::SolverCrash ||
       R.Failure == FailureKind::ResourceOut))
    ++B.Crashes;
}

Scheduler::Scheduler(unsigned Jobs, WarmPoolOptions Warm)
    : Slots(Jobs == 0 ? 1 : Jobs), Opts(Warm) {}

Scheduler::~Scheduler() {
  // Abandoned run (exception unwound through run(), or run() never called):
  // never leave zombies or orphaned solvers behind.
  for (RunningTask &T : Active) {
    if (T.Warm) {
      killWarmWorker(T.WW, /*AtDeadline=*/false);
      finishWarmRequest(T.WW);
    } else {
      killWorker(T.W, /*AtDeadline=*/false);
      finishWorker(T.W);
    }
  }
  for (WarmWorker &WW : Idle)
    retireWarmWorker(WW);
}

TaskId Scheduler::submit(SandboxRequest Req, Completion Done, OnStart Start) {
  TaskId Id = NextId++;
  Pending.push_back({Id, std::move(Req), std::move(Done), std::move(Start)});
  return Id;
}

TaskId Scheduler::submitFront(SandboxRequest Req, Completion Done,
                              OnStart Start) {
  TaskId Id = NextId++;
  Pending.push_front({Id, std::move(Req), std::move(Done), std::move(Start)});
  return Id;
}

bool Scheduler::cancel(TaskId Id) {
  for (auto It = Pending.begin(); It != Pending.end(); ++It)
    if (It->Id == Id) {
      Pending.erase(It);
      return true;
    }
  for (auto It = Active.begin(); It != Active.end(); ++It)
    if (It->Id == Id) {
      if (It->Warm) {
        // A cancelled warm worker cannot be reused: its pipe may still
        // carry the killed request's partial answer. Kill, reap, replace.
        killWarmWorker(It->WW, /*AtDeadline=*/false);
        finishWarmRequest(It->WW); // reap; result deliberately discarded
        ++Stats.RecycledCrash;
      } else {
        killWorker(It->W, /*AtDeadline=*/false);
        finishWorker(It->W); // reap; the result is deliberately discarded
      }
      Active.erase(It);
      return true;
    }
  return false;
}

WarmWorker Scheduler::acquireWarmWorker() {
  if (!Idle.empty()) {
    WarmWorker WW = std::move(Idle.back());
    Idle.pop_back();
    return WW;
  }
  WarmWorker WW = spawnWarmWorker();
  if (!WW.SpawnFailed)
    ++Stats.WarmSpawns;
  return WW;
}

void Scheduler::recycleOrRetain(WarmWorker &&WW, const SmtResult &R) {
  if (!WW.usable()) {
    // Already dead and reaped by finishWarmRequest (crash, deadline kill,
    // rlimit death, torn frame).
    ++Stats.RecycledCrash;
    return;
  }
  if (R.Status == SmtStatus::Unknown) {
    // Any non-verdict answer — in-solver timeout, resource trouble the
    // worker survived, lowering error — is grounds for a fresh process:
    // whatever state the solver left behind is not worth trusting.
    retireWarmWorker(WW);
    ++Stats.RecycledCrash;
    return;
  }
  if (Opts.RecycleAfter != 0 && WW.Served >= Opts.RecycleAfter) {
    retireWarmWorker(WW);
    ++Stats.RecycledCount;
    return;
  }
  size_t HighWaterKb = Opts.RssHighWaterKb;
  if (HighWaterKb == 0 && WW.MemLimitMb != 0)
    HighWaterKb = static_cast<size_t>(WW.MemLimitMb) * 1024 * 3 / 4;
  if (HighWaterKb != 0 && WW.RssKb > HighWaterKb) {
    retireWarmWorker(WW);
    ++Stats.RecycledRss;
    return;
  }
  Idle.push_back(std::move(WW));
}

void Scheduler::fill() {
  while (Active.size() < Slots && !Pending.empty()) {
    PendingTask T = std::move(Pending.front());
    Pending.pop_front();
    if (T.Start)
      T.Start(); // queued work becomes running work right here

    if (!Opts.Warm) {
      WorkerHandle W = spawnWorker(T.Req);
      ++Stats.ColdSpawns;
      if (W.SpawnFailed) {
        // fork/pipe exhaustion: classify and complete right here. The
        // completion may re-submit (the retry ladder treats this as a
        // SolverCrash), which lands back in Pending for the next fill pass.
        --Stats.ColdSpawns;
        SmtResult R = finishWorker(W);
        ++Stats.Served;
        Stats.SolveSeconds += R.Seconds;
        countBackendResult(Stats, statsBackend(T.Req), R);
        T.Done(R);
        continue;
      }
      RunningTask RT;
      RT.Id = T.Id;
      RT.Warm = false;
      RT.W = std::move(W);
      RT.Done = std::move(T.Done);
      RT.Backend = statsBackend(T.Req);
      Active.push_back(std::move(RT));
      continue;
    }

    WarmWorker WW = acquireWarmWorker();
    if (!WW.SpawnFailed && !startWarmRequest(WW, T.Req)) {
      // The leased worker died while idle (EPIPE on the request write).
      // Reap it and retry once on a guaranteed-fresh fork before giving up.
      finishWarmRequest(WW); // classification of an idle death: discarded
      ++Stats.RecycledCrash;
      WW = spawnWarmWorker();
      if (!WW.SpawnFailed) {
        ++Stats.WarmSpawns;
        startWarmRequest(WW, T.Req);
      }
    }
    if (WW.SpawnFailed || !WW.running()) {
      // fork/pipe exhaustion, or even the fresh fork's pipe broke:
      // classify and complete right here, like a cold spawn failure.
      SmtResult R = finishWarmRequest(WW);
      ++Stats.Served;
      Stats.SolveSeconds += R.Seconds;
      countBackendResult(Stats, statsBackend(T.Req), R);
      T.Done(R);
      continue;
    }
    RunningTask RT;
    RT.Id = T.Id;
    RT.Warm = true;
    RT.WW = std::move(WW);
    RT.Done = std::move(T.Done);
    RT.Backend = statsBackend(T.Req);
    Active.push_back(std::move(RT));
  }
}

void Scheduler::run() {
  std::vector<pollfd> PFs;
  std::vector<RunningTask> Finished;
  for (;;) {
    fill();
    if (Active.empty()) {
      if (Pending.empty())
        return;
      continue; // spawn-failure completions re-queued work
    }

    // One poll over every live worker, bounded by the nearest deadline.
    PFs.clear();
    int PollMs = -1;
    auto Now = std::chrono::steady_clock::now();
    for (const RunningTask &T : Active) {
      pollfd PF;
      PF.fd = T.Warm ? T.WW.FromFd : T.W.Fd;
      PF.events = POLLIN;
      PF.revents = 0;
      PFs.push_back(PF);
      bool HasDeadline = T.Warm ? T.WW.HasDeadline : T.W.HasDeadline;
      if (HasDeadline) {
        auto Deadline = T.Warm ? T.WW.Deadline : T.W.Deadline;
        auto Remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                          Deadline - Now)
                          .count();
        int Ms = Remain <= 0 ? 0 : static_cast<int>(Remain);
        if (PollMs < 0 || Ms < PollMs)
          PollMs = Ms;
      }
    }
    int PR = poll(PFs.data(), PFs.size(), PollMs);
    if (PR < 0 && errno == EINTR)
      continue;

    // Drain readable pipes, then fire any expired deadlines.
    for (size_t I = 0; I != Active.size(); ++I)
      if (PFs[I].revents & (POLLIN | POLLHUP | POLLERR)) {
        if (Active[I].Warm)
          pumpWarmWorker(Active[I].WW);
        else
          pumpWorker(Active[I].W);
      }
    Now = std::chrono::steady_clock::now();
    for (RunningTask &T : Active) {
      if (T.Warm) {
        if (T.WW.running() && T.WW.HasDeadline && Now >= T.WW.Deadline)
          killWarmWorker(T.WW, /*AtDeadline=*/true);
      } else {
        if (!T.W.Eof && T.W.HasDeadline && Now >= T.W.Deadline)
          killWorker(T.W, /*AtDeadline=*/true);
      }
    }

    // Extract finished workers *before* running completions: a completion
    // may submit new tasks or cancel running siblings, both of which
    // mutate the active list. Classification order is submission order
    // among the workers that finished in this poll round, so completion
    // order is deterministic given worker fates.
    Finished.clear();
    for (auto It = Active.begin(); It != Active.end();) {
      bool Done = It->Warm ? !It->WW.running()
                           : (It->W.Eof || It->W.KilledByDeadline);
      if (Done) {
        Finished.push_back(std::move(*It));
        It = Active.erase(It);
      } else {
        ++It;
      }
    }
    for (RunningTask &T : Finished) {
      SmtResult R =
          T.Warm ? finishWarmRequest(T.WW) : finishWorker(T.W);
      ++Stats.Served;
      Stats.SolveSeconds += R.Seconds;
      countBackendResult(Stats, T.Backend, R);
      if (T.Warm)
        recycleOrRetain(std::move(T.WW), R);
      T.Done(R);
    }
  }
}
