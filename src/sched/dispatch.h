//===--- dispatch.h - Obligation-level parallel dispatch --------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The obligation-level logic on top of the worker pool (sched/pool.h):
/// each submitted obligation runs the same retry/escalation/degradation
/// ladder as the classic `ResilientSolver::dispatch` — same `RetryPolicy`,
/// same `FaultPlan` hooks, same `DeadlineBudget` accounting, same failure
/// taxonomy — but asynchronously, so N obligations' workers can be in
/// flight at once. `ResilientSolver::dispatch` itself is now the one-slot
/// special case of this engine, which is what guarantees `--jobs N` and
/// `--jobs 1` agree attempt for attempt.
///
/// Two dispatch shapes:
///
///  * **Ladder** (default): attempts run one at a time per obligation, with
///    escalating deadlines, reseeding, then tactic degradation; retries are
///    submitted at the front of the queue so in-flight obligations finish
///    before fresh ones start.
///  * **Portfolio** (`--portfolio`): the tactic ladder's rungs (full
///    tactics, then each degradation level) race concurrently for one
///    obligation — plus one full-tactics rung per *secondary backend* when
///    the spec lists several (Z3-full vs Z3-degraded vs cvc5). The first
///    definitive answer wins; losing rungs of the winner's backend and all
///    degraded rungs are SIGKILLed via `Scheduler::cancel`, but other
///    backends' full-tactics rungs keep racing as cross-checks. A late
///    cross-check that answers sat where the winner answered unsat (or vice
///    versa, at the same tactic level, where the formulas are identical) is
///    recorded as a `DivergenceAlarm` — the driver turns any alarm into
///    infrastructure exit 3, never a silent wrong verdict. If every rung
///    fails retryably, the full-tactics rung's failure is reported.
///
/// Solving happens in sandboxed workers whenever `Sandbox.Enabled`; without
/// a sandbox an attempt solves in-process, synchronously, on the event-loop
/// thread — the classic single-threaded path (`--jobs 1` without
/// `--isolate`). Lowering errors and short-circuited injected faults never
/// fork either way.
///
/// Threading: one engine, one thread. An engine and its Scheduler belong to
/// the thread that drives `drain()`; nothing here locks. The concurrent
/// serve daemon gets multi-client parallelism by giving each session thread
/// its OWN engine + Scheduler pair (leasing warm workers from a partitioned
/// WarmFleet), not by sharing one engine — the only cross-thread entry
/// point anywhere in the stack is `Scheduler::requestAbort`.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_SCHED_DISPATCH_H
#define DRYAD_SCHED_DISPATCH_H

#include "backend/backend.h"
#include "sched/pool.h"
#include "smt/inject.h"
#include "smt/resilient.h"

#include <memory>

namespace dryad {

/// Two backends disagreed sat-vs-unsat on one obligation at the same tactic
/// level — either a solver soundness bug or a broken translation, and in
/// both cases grounds to distrust the whole run (infrastructure exit 3).
struct DivergenceAlarm {
  std::string Obligation;
  std::string WinnerBackend; ///< backend whose answer was reported
  SmtStatus WinnerStatus = SmtStatus::Unknown;
  std::string OtherBackend; ///< cross-checking backend that disagreed
  SmtStatus OtherStatus = SmtStatus::Unknown;
  std::string Detail; ///< both answers, human-readable, for the dump
};

/// Everything one obligation's dispatch needs. `Build` populates a fresh
/// solver per attempt (it is called on the event-loop thread, so it may
/// touch shared verifier state without locking).
struct ObligationSpec {
  std::string Name; ///< diagnostics only
  RetryPolicy Policy;
  FaultPlan Inject;
  SandboxOptions Sandbox;
  ResilientSolver::Builder Build;
  DeadlineBudget *Budget = nullptr; ///< required; owned by the caller
  /// Solver backends, primary first (empty = the in-process Z3 API). The
  /// ladder shape uses only the primary; the portfolio adds one
  /// full-tactics rung per secondary backend.
  std::vector<BackendSpec> Backends;
  /// Race the tactic rungs instead of walking the ladder. Requires
  /// Sandbox.Enabled (racing needs processes); ignored otherwise.
  bool Portfolio = false;
  /// First attempt jumps the pool queue — for dependent follow-ups (e.g.
  /// vacuity probes) that must run before fresh obligations to preserve
  /// the sequential schedule at one slot.
  bool Urgent = false;
};

class DispatchEngine {
public:
  /// Runs on the event-loop thread when the obligation's ladder or
  /// portfolio concludes. May submit further obligations.
  using OnDone = std::function<void(const DispatchResult &)>;

  explicit DispatchEngine(Scheduler &Pool) : Pool(Pool) {}

  /// Starts one obligation. Attempts that need no worker (no sandbox,
  /// lowering errors, short-circuited injected faults) run synchronously —
  /// `Done` may fire before this returns.
  void submit(ObligationSpec Spec, OnDone Done);

  /// Drives the pool until every submitted obligation has concluded.
  void drain() { Pool.run(); }

  Scheduler &pool() { return Pool; }

  /// Cross-backend sat/unsat disagreements observed so far. Populated only
  /// by the portfolio shape; the caller must treat a non-empty list as an
  /// infrastructure failure of the whole run.
  const std::vector<DivergenceAlarm> &divergences() const {
    return Divergences;
  }

private:
  struct ObState;
  using StatePtr = std::shared_ptr<ObState>;

  void startAttempt(const StatePtr &St, unsigned Attempt);
  void handleResult(const StatePtr &St, const AttemptInfo &Info,
                    const SmtResult &R);
  void startPortfolio(const StatePtr &St);
  void handleRungResult(const StatePtr &St, const AttemptInfo &Info,
                        const SmtResult &R);
  void finishAllRungsFailed(const StatePtr &St);
  void finishBudgetExhausted(const StatePtr &St);
  void finish(const StatePtr &St);

  Scheduler &Pool;
  std::vector<DivergenceAlarm> Divergences;
};

} // namespace dryad

#endif // DRYAD_SCHED_DISPATCH_H
