//===--- typecheck.h - Dryad well-formedness checks -------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Well-formedness checks for Dryad (paper §4.1):
///  * the separating conjunction may not appear under negation;
///  * recursive-definition bodies may not use subtraction, set difference,
///    or negation (this guarantees monotonicity, hence least fixed points);
///  * every implicitly existentially quantified variable of a definition
///    body is bound by a points-to on the definition argument.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_DRYAD_TYPECHECK_H
#define DRYAD_DRYAD_TYPECHECK_H

#include "dryad/ast.h"
#include "dryad/defs.h"

namespace dryad {

/// Checks a Dryad formula as used in contracts/invariants. Returns false and
/// reports through \p Diags on violation.
bool checkDryadFormula(const Formula *F, DiagEngine &Diags);

/// Checks all registered recursive definitions.
bool checkDefs(const DefRegistry &Defs, DiagEngine &Diags);

} // namespace dryad

#endif // DRYAD_DRYAD_TYPECHECK_H
