//===--- defs.h - Recursive definitions and field registry ------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive definitions (paper §4.1): unary recursive predicates
/// p∆_{pf,~v}(x) and functions f∆_{pf,~v}(x) with guarded cases, plus the
/// registry of pointer/data fields a module declares. Bodies follow the
/// paper's restrictions: no negative operations, every existential variable
/// ~s bound exactly once by a points-to on the definition argument.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_DRYAD_DEFS_H
#define DRYAD_DRYAD_DEFS_H

#include "dryad/ast.h"
#include "dryad/sorts.h"

#include <map>
#include <string>
#include <vector>

namespace dryad {

/// The pointer and data fields of the (single) record layout, as in §4.1:
/// every location has every field.
class FieldTable {
public:
  void addPointerField(const std::string &Name) { add(Name, /*Ptr=*/true); }
  void addDataField(const std::string &Name) { add(Name, /*Ptr=*/false); }

  bool isPointerField(const std::string &Name) const {
    auto It = Kinds.find(Name);
    return It != Kinds.end() && It->second;
  }
  bool isDataField(const std::string &Name) const {
    auto It = Kinds.find(Name);
    return It != Kinds.end() && !It->second;
  }
  bool isField(const std::string &Name) const { return Kinds.count(Name); }

  /// Sort of values stored in a field.
  Sort fieldSort(const std::string &Name) const {
    return isPointerField(Name) ? Sort::Loc : Sort::Int;
  }

  const std::vector<std::string> &pointerFields() const { return PtrFields; }
  const std::vector<std::string> &dataFields() const { return DataFields; }
  const std::vector<std::string> &allFields() const { return All; }

private:
  void add(const std::string &Name, bool Ptr) {
    if (Kinds.count(Name))
      return;
    Kinds[Name] = Ptr;
    (Ptr ? PtrFields : DataFields).push_back(Name);
    All.push_back(Name);
  }

  std::map<std::string, bool> Kinds;
  std::vector<std::string> PtrFields;
  std::vector<std::string> DataFields;
  std::vector<std::string> All;
};

/// One recursive definition rec∆_{pf,~v}. Predicates have a single body
/// formula; functions have guarded cases evaluated in order, with a final
/// default value (paper Fig. 2).
struct RecDef {
  struct Case {
    const Formula *Guard; ///< nullptr for the default case
    const Term *Value;
  };

  std::string Name;
  /// Result sort: Bool for predicates, Int/IntSet/LocSet/IntMSet for
  /// functions.
  Sort Result = Sort::Bool;
  /// The pointer fields ~pf the heaplet is reachable over.
  std::vector<std::string> PtrFields;
  /// Formal names of the stop parameters ~v (bound inside bodies).
  std::vector<std::string> StopParams;
  /// Formal name of the location argument (x in the paper).
  std::string ArgName = "x";

  /// Predicate body (predicates only).
  const Formula *PredBody = nullptr;
  /// Function cases (functions only); the default case is last with
  /// Guard == nullptr.
  std::vector<Case> Cases;

  bool isPredicate() const { return Result == Sort::Bool; }
};

/// Registry of all recursive definitions of a module, in declaration order.
class DefRegistry {
public:
  /// Adds a definition; returns null if the name is already taken. The
  /// returned pointer is mutable so parsers can install the body after
  /// registering the name (definitions may be self-recursive).
  RecDef *add(RecDef Def);

  const RecDef *lookup(const std::string &Name) const;
  const std::vector<std::unique_ptr<RecDef>> &all() const { return Defs; }

private:
  std::vector<std::unique_ptr<RecDef>> Defs;
  std::map<std::string, const RecDef *> ByName;
};

} // namespace dryad

#endif // DRYAD_DRYAD_DEFS_H
