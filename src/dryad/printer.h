//===--- printer.h - Pretty-printing for the AST ----------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders terms, formulas, and recursive definitions back to the concrete
/// syntax. Stamped nodes print their timestamp/version with an `@` suffix
/// (e.g. `next@2(x)`, `list@1(x)`), which also serves as the canonical key
/// for recursive-definition instances.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_DRYAD_PRINTER_H
#define DRYAD_DRYAD_PRINTER_H

#include "dryad/ast.h"
#include "dryad/defs.h"

#include <string>

namespace dryad {

std::string print(const Term *T);
std::string print(const Formula *F);
std::string print(const RecDef &Def);

} // namespace dryad

#endif // DRYAD_DRYAD_PRINTER_H
