//===--- lexer.h - Token stream for Dryad and program syntax ----*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One lexer serves both the specification language (recursive definitions,
/// axioms, contracts) and the imperative program language of Fig. 5.
/// Keywords are recognized at the parser level; the lexer only produces
/// identifiers, integer literals, and punctuation.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_DRYAD_LEXER_H
#define DRYAD_DRYAD_LEXER_H

#include "support/diag.h"

#include <cstdint>
#include <string>
#include <vector>

namespace dryad {

struct Token {
  enum Kind : uint8_t {
    Ident,
    IntLit,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    Plus,
    Minus,
    Star,
    EqEq,
    NotEq,
    LessEq,
    Less,
    GreaterEq,
    Greater,
    AndAnd,
    OrOr,
    Bang,
    PointsToSym, ///< |->
    Arrow,       ///< ->
    FatArrow,    ///< =>
    ColonEq,     ///< :=
    EndOfFile
  };

  Kind K = EndOfFile;
  std::string Text;  ///< identifier spelling
  int64_t Value = 0; ///< integer literal value
  SourceLoc Loc;

  bool is(Kind Other) const { return K == Other; }
  bool isIdent(const char *S) const { return K == Ident && Text == S; }
};

/// Tokenizes an entire buffer up front. Reports malformed input through the
/// diagnostic engine and recovers by skipping the offending character.
std::vector<Token> tokenize(const std::string &Input, DiagEngine &Diags);

} // namespace dryad

#endif // DRYAD_DRYAD_LEXER_H
