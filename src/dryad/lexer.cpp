//===--- lexer.cpp - Token stream for Dryad and program syntax ------------===//

#include "dryad/lexer.h"

#include <cctype>

using namespace dryad;

namespace {
class Lexer {
public:
  Lexer(const std::string &Input, DiagEngine &Diags)
      : Input(Input), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Out;
    while (true) {
      skipTrivia();
      Token T = next();
      Out.push_back(T);
      if (T.is(Token::EndOfFile))
        break;
    }
    return Out;
  }

private:
  char peek(size_t Off = 0) const {
    return Pos + Off < Input.size() ? Input[Pos + Off] : '\0';
  }

  char advance() {
    char C = Input[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  SourceLoc here() const { return {Line, Col}; }

  void skipTrivia() {
    while (Pos < Input.size()) {
      char C = peek();
      if (isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (Pos < Input.size() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        SourceLoc Start = here();
        advance();
        advance();
        while (Pos < Input.size() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (Pos >= Input.size()) {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  Token make(Token::Kind K, SourceLoc Loc) {
    Token T;
    T.K = K;
    T.Loc = Loc;
    return T;
  }

  Token next() {
    if (Pos >= Input.size())
      return make(Token::EndOfFile, here());
    SourceLoc Loc = here();
    char C = peek();

    if (isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text;
      while (Pos < Input.size() &&
             (isalnum(static_cast<unsigned char>(peek())) || peek() == '_'))
        Text += advance();
      Token T = make(Token::Ident, Loc);
      T.Text = std::move(Text);
      return T;
    }

    if (isdigit(static_cast<unsigned char>(C))) {
      int64_t V = 0;
      while (Pos < Input.size() && isdigit(static_cast<unsigned char>(peek())))
        V = V * 10 + (advance() - '0');
      Token T = make(Token::IntLit, Loc);
      T.Value = V;
      return T;
    }

    advance();
    switch (C) {
    case '(':
      return make(Token::LParen, Loc);
    case ')':
      return make(Token::RParen, Loc);
    case '{':
      return make(Token::LBrace, Loc);
    case '}':
      return make(Token::RBrace, Loc);
    case '[':
      return make(Token::LBracket, Loc);
    case ']':
      return make(Token::RBracket, Loc);
    case ',':
      return make(Token::Comma, Loc);
    case ';':
      return make(Token::Semi, Loc);
    case '.':
      return make(Token::Dot, Loc);
    case '+':
      return make(Token::Plus, Loc);
    case '*':
      return make(Token::Star, Loc);
    case ':':
      if (peek() == '=') {
        advance();
        return make(Token::ColonEq, Loc);
      }
      return make(Token::Colon, Loc);
    case '-':
      if (peek() == '>') {
        advance();
        return make(Token::Arrow, Loc);
      }
      return make(Token::Minus, Loc);
    case '=':
      if (peek() == '=') {
        advance();
        return make(Token::EqEq, Loc);
      }
      if (peek() == '>') {
        advance();
        return make(Token::FatArrow, Loc);
      }
      Diags.error(Loc, "expected '==', ':=' or '=>' (single '=' is not used)");
      return make(Token::EqEq, Loc);
    case '!':
      if (peek() == '=') {
        advance();
        return make(Token::NotEq, Loc);
      }
      return make(Token::Bang, Loc);
    case '<':
      if (peek() == '=') {
        advance();
        return make(Token::LessEq, Loc);
      }
      return make(Token::Less, Loc);
    case '>':
      if (peek() == '=') {
        advance();
        return make(Token::GreaterEq, Loc);
      }
      return make(Token::Greater, Loc);
    case '&':
      if (peek() == '&') {
        advance();
        return make(Token::AndAnd, Loc);
      }
      Diags.error(Loc, "expected '&&'");
      return make(Token::AndAnd, Loc);
    case '|':
      if (peek() == '|') {
        advance();
        return make(Token::OrOr, Loc);
      }
      if (peek() == '-' && peek(1) == '>') {
        advance();
        advance();
        return make(Token::PointsToSym, Loc);
      }
      Diags.error(Loc, "expected '||' or '|->'");
      return make(Token::OrOr, Loc);
    default:
      Diags.error(Loc, std::string("unexpected character '") + C + "'");
      return next();
    }
  }

  const std::string &Input;
  DiagEngine &Diags;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;
};
} // namespace

std::vector<Token> dryad::tokenize(const std::string &Input,
                                   DiagEngine &Diags) {
  return Lexer(Input, Diags).run();
}
