//===--- parser.h - Parser for the Dryad specification syntax --*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for Dryad terms, formulas, recursive definitions
/// (`pred` / `func`), field declarations, and user axioms. The program parser
/// in lang/ reuses this through the shared TokenCursor to parse contracts and
/// conditions.
///
/// Concrete syntax examples:
/// \code
///   fields ptr next, left, right;
///   fields data key;
///
///   pred list[ptr next](x) :=
///     (x == nil && emp) || (x |-> (next: n) * list(n));
///
///   pred lseg[ptr next; stop u](x) :=
///     (x == u && emp) || (x |-> (next: n) * lseg(n, u));
///
///   func keys[ptr next](x) : intset :=
///     case (x == nil && emp) -> {};
///     case (x |-> (next: n, key: k) * true) -> union(keys(n), {k});
///     default -> {};
///
///   axiom (x: loc, y: loc) : lseg(x, y) * list(y) => list(x);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_DRYAD_PARSER_H
#define DRYAD_DRYAD_PARSER_H

#include "dryad/ast.h"
#include "dryad/defs.h"
#include "dryad/lexer.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dryad {

/// A user-provided axiom (paper §6.3): universally quantified over Params,
/// instantiated over the footprint by natural/axioms.cpp.
struct Axiom {
  std::vector<std::pair<std::string, Sort>> Params;
  const Formula *Lhs = nullptr; ///< Dryad formula (may use * and emp)
  const Formula *Rhs = nullptr;
  SourceLoc Loc;
};

/// Cursor over a pre-tokenized buffer, shared between the spec parser and
/// the program parser.
struct TokenCursor {
  const std::vector<Token> *Toks = nullptr;
  size_t Pos = 0;

  const Token &peek(size_t Off = 0) const {
    size_t I = Pos + Off;
    if (I >= Toks->size())
      I = Toks->size() - 1; // EOF token
    return (*Toks)[I];
  }
  const Token &advance() {
    const Token &T = peek();
    if (Pos + 1 < Toks->size())
      ++Pos;
    return T;
  }
  bool match(Token::Kind K) {
    if (!peek().is(K))
      return false;
    advance();
    return true;
  }
  bool matchIdent(const char *S) {
    if (!peek().isIdent(S))
      return false;
    advance();
    return true;
  }
  bool atEnd() const { return peek().is(Token::EndOfFile); }
};

/// Variable typing environment for formula/term parsing.
using VarEnv = std::map<std::string, Sort>;

class SpecParser {
public:
  SpecParser(AstContext &Ctx, FieldTable &Fields, DefRegistry &Defs,
             DiagEngine &Diags, TokenCursor &Cur)
      : Ctx(Ctx), Fields(Fields), Defs(Defs), Diags(Diags), Cur(Cur) {}

  /// Parses a formula (lowest precedence, `||`). Unknown variables are
  /// diagnosed unless they appear in \p Env.
  const Formula *parseFormula(VarEnv &Env);

  /// Parses a term; \p Expected guides the sort of otherwise-ambiguous
  /// literals such as `{}`.
  const Term *parseTerm(VarEnv &Env, std::optional<Sort> Expected = {});

  /// Top-level declarations. Each returns false (after reporting) on error.
  bool parseFieldsDecl();
  bool parsePredDef();
  bool parseFuncDef();
  bool parseAxiom(std::vector<Axiom> &Out);

  /// Parses a sort keyword: loc | int | bool | intset | locset | msint.
  std::optional<Sort> parseSort();

  /// Skips tokens until after the next ';' (error recovery).
  void synchronize();

private:
  const Formula *parseOrFormula(VarEnv &Env);
  const Formula *parseConjFormula(VarEnv &Env);
  const Formula *parseUnaryFormula(VarEnv &Env);
  const Formula *parseAtom(VarEnv &Env);
  const Formula *parsePointsToTail(const Term *Base, VarEnv &Env);
  const Term *parsePrimaryTerm(VarEnv &Env, std::optional<Sort> Expected);

  /// Speculatively parses a term; restores the cursor and returns null on
  /// failure (diagnostics are suppressed during speculation).
  const Term *tryParseTerm(VarEnv &Env);

  /// Scans tokens [From, To) for points-to bindings and enters the bound
  /// variables with their field sorts into \p Env (used for the implicitly
  /// existentially quantified ~s of definition bodies).
  void preBindPointsToVars(size_t From, size_t To, VarEnv &Env);

  /// Finds the position of the token terminating the current clause (the
  /// next ';' at bracket depth zero), without moving the cursor.
  size_t findClauseEnd() const;

  Sort sortOfVar(const VarEnv &Env, const std::string &Name, SourceLoc Loc,
                 std::optional<Sort> Expected);

  AstContext &Ctx;
  FieldTable &Fields;
  DefRegistry &Defs;
  DiagEngine &Diags;
  TokenCursor &Cur;
  bool Speculating = false;
};

} // namespace dryad

#endif // DRYAD_DRYAD_PARSER_H
