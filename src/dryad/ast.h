//===--- ast.h - Dryad and classical-logic AST ------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One shared AST covers both the Dryad separation logic of §4 and the
/// classical logic over the global heap that §5 translates into. The purely
/// spatial nodes (emp, points-to, separating conjunction, recursive-definition
/// applications without a timestamp) belong to Dryad; FieldRead, Reach, Ite,
/// FieldUpdate and timestamped recursive applications belong to the classical
/// side. Well-formedness of each dialect is enforced by dryad/typecheck.h.
///
/// Nodes are immutable and arena-owned by an AstContext. Structural equality
/// and printing are provided for tests and for keying recursive-definition
/// instances.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_DRYAD_AST_H
#define DRYAD_DRYAD_AST_H

#include "dryad/sorts.h"
#include "support/diag.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dryad {

class Formula;
struct RecDef;

//===----------------------------------------------------------------------===//
// Terms
//===----------------------------------------------------------------------===//

class Term {
public:
  enum Kind : uint8_t {
    TK_Nil,       ///< the nil location (= 0)
    TK_Var,       ///< program / spec / definition-bound variable
    TK_IntConst,  ///< integer literal
    TK_Inf,       ///< +infinity or -infinity (IntL lattice bounds)
    TK_IntBin,    ///< it + it | it - it
    TK_EmptySet,  ///< empty set / multiset
    TK_Singleton, ///< {t} or {t}m
    TK_SetBin,    ///< union / intersection / difference
    TK_RecFunc,   ///< recursive function application f(lt, stops...)
    TK_FieldRead, ///< classical: pf(lt) / df(lt), versioned after stamping
    TK_Reach,     ///< classical: reach_rec(lt) set of locations
    TK_Ite        ///< classical: if-then-else term
  };

  Kind kind() const { return K; }
  Sort sort() const { return S; }
  SourceLoc loc() const { return Loc; }

protected:
  Term(Kind K, Sort S, SourceLoc Loc) : K(K), S(S), Loc(Loc) {}

private:
  Kind K;
  Sort S;
  SourceLoc Loc;
};

class NilTerm : public Term {
public:
  explicit NilTerm(SourceLoc L) : Term(TK_Nil, Sort::Loc, L) {}
  static bool classof(const Term *T) { return T->kind() == TK_Nil; }
};

class VarTerm : public Term {
public:
  VarTerm(std::string Name, Sort S, SourceLoc L)
      : Term(TK_Var, S, L), Name(std::move(Name)) {}
  const std::string &name() const { return Name; }
  static bool classof(const Term *T) { return T->kind() == TK_Var; }

private:
  std::string Name;
};

class IntConstTerm : public Term {
public:
  IntConstTerm(int64_t V, SourceLoc L)
      : Term(TK_IntConst, Sort::Int, L), Value(V) {}
  int64_t value() const { return Value; }
  static bool classof(const Term *T) { return T->kind() == TK_IntConst; }

private:
  int64_t Value;
};

class InfTerm : public Term {
public:
  InfTerm(bool Positive, SourceLoc L)
      : Term(TK_Inf, Sort::Int, L), Positive(Positive) {}
  bool isPositive() const { return Positive; }
  static bool classof(const Term *T) { return T->kind() == TK_Inf; }

private:
  bool Positive;
};

class IntBinTerm : public Term {
public:
  enum Op : uint8_t { Add, Sub, Max, Min };
  IntBinTerm(Op O, const Term *L, const Term *R, SourceLoc Lc)
      : Term(TK_IntBin, Sort::Int, Lc), O(O), LHS(L), RHS(R) {}
  Op op() const { return O; }
  const Term *lhs() const { return LHS; }
  const Term *rhs() const { return RHS; }
  static bool classof(const Term *T) { return T->kind() == TK_IntBin; }

private:
  Op O;
  const Term *LHS, *RHS;
};

class EmptySetTerm : public Term {
public:
  EmptySetTerm(Sort S, SourceLoc L) : Term(TK_EmptySet, S, L) {
    assert(isSetSort(S) && "empty set must have a set sort");
  }
  static bool classof(const Term *T) { return T->kind() == TK_EmptySet; }
};

class SingletonTerm : public Term {
public:
  SingletonTerm(const Term *Elem, Sort S, SourceLoc L)
      : Term(TK_Singleton, S, L), Elem(Elem) {
    assert(isSetSort(S) && "singleton must have a set sort");
  }
  const Term *element() const { return Elem; }
  static bool classof(const Term *T) { return T->kind() == TK_Singleton; }

private:
  const Term *Elem;
};

class SetBinTerm : public Term {
public:
  enum Op : uint8_t { Union, Inter, Diff };
  SetBinTerm(Op O, const Term *L, const Term *R, Sort S, SourceLoc Lc)
      : Term(TK_SetBin, S, Lc), O(O), LHS(L), RHS(R) {}
  Op op() const { return O; }
  const Term *lhs() const { return LHS; }
  const Term *rhs() const { return RHS; }
  static bool classof(const Term *T) { return T->kind() == TK_SetBin; }

private:
  Op O;
  const Term *LHS, *RHS;
};

/// Application of a recursive function f∆_{pf,~v}(lt). StopArgs supplies the
/// actual location terms for the definition's stop parameters ~v. Time is the
/// boundary timestamp after stamping (-1 while unstamped).
class RecFuncTerm : public Term {
public:
  RecFuncTerm(const RecDef *Def, const Term *Arg, std::vector<const Term *> Stops,
              Sort S, int Time, SourceLoc L)
      : Term(TK_RecFunc, S, L), Def(Def), Arg(Arg), Stops(std::move(Stops)),
        Time(Time) {}
  const RecDef *def() const { return Def; }
  const Term *arg() const { return Arg; }
  const std::vector<const Term *> &stopArgs() const { return Stops; }
  int time() const { return Time; }
  static bool classof(const Term *T) { return T->kind() == TK_RecFunc; }

private:
  const RecDef *Def;
  const Term *Arg;
  std::vector<const Term *> Stops;
  int Time;
};

/// Classical logic only: pf(lt) or df(lt). Version identifies the heap-array
/// version produced by vcgen (-1 while unstamped; definition bodies are kept
/// unstamped and stamped at instantiation time).
class FieldReadTerm : public Term {
public:
  FieldReadTerm(std::string Field, const Term *Arg, Sort S, int Version,
                SourceLoc L)
      : Term(TK_FieldRead, S, L), Field(std::move(Field)), Arg(Arg),
        Version(Version) {}
  const std::string &field() const { return Field; }
  const Term *arg() const { return Arg; }
  int version() const { return Version; }
  static bool classof(const Term *T) { return T->kind() == TK_FieldRead; }

private:
  std::string Field;
  const Term *Arg;
  int Version;
};

/// Classical logic only: reach_rec(lt), the set of locations reachable from
/// lt via the definition's pointer fields without passing through its stop
/// locations (paper §5).
class ReachTerm : public Term {
public:
  ReachTerm(const RecDef *Def, const Term *Arg,
            std::vector<const Term *> Stops, int Time, SourceLoc L)
      : Term(TK_Reach, Sort::LocSet, L), Def(Def), Arg(Arg),
        Stops(std::move(Stops)), Time(Time) {}
  const RecDef *def() const { return Def; }
  const Term *arg() const { return Arg; }
  const std::vector<const Term *> &stopArgs() const { return Stops; }
  int time() const { return Time; }
  static bool classof(const Term *T) { return T->kind() == TK_Reach; }

private:
  const RecDef *Def;
  const Term *Arg;
  std::vector<const Term *> Stops;
  int Time;
};

/// Classical logic only: conditional term.
class IteTerm : public Term {
public:
  IteTerm(const Formula *Cond, const Term *Then, const Term *Else, Sort S,
          SourceLoc L)
      : Term(TK_Ite, S, L), Cond(Cond), Then(Then), Else(Else) {}
  const Formula *cond() const { return Cond; }
  const Term *thenTerm() const { return Then; }
  const Term *elseTerm() const { return Else; }
  static bool classof(const Term *T) { return T->kind() == TK_Ite; }

private:
  const Formula *Cond;
  const Term *Then, *Else;
};

//===----------------------------------------------------------------------===//
// Formulas
//===----------------------------------------------------------------------===//

class Formula {
public:
  enum Kind : uint8_t {
    FK_BoolConst,
    FK_Emp,         ///< Dryad: the heaplet is empty
    FK_PointsTo,    ///< Dryad: lt |-> (fields)
    FK_Cmp,         ///< all binary relations incl. set comparisons
    FK_RecPred,     ///< recursive predicate application
    FK_And,
    FK_Or,
    FK_Not,
    FK_Sep,         ///< Dryad: separating conjunction
    FK_FieldUpdate  ///< vcgen: field array version v+1 = store(v, loc, val)
  };

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

protected:
  Formula(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

class BoolConstFormula : public Formula {
public:
  BoolConstFormula(bool V, SourceLoc L) : Formula(FK_BoolConst, L), Value(V) {}
  bool value() const { return Value; }
  static bool classof(const Formula *F) { return F->kind() == FK_BoolConst; }

private:
  bool Value;
};

class EmpFormula : public Formula {
public:
  explicit EmpFormula(SourceLoc L) : Formula(FK_Emp, L) {}
  static bool classof(const Formula *F) { return F->kind() == FK_Emp; }
};

/// lt |-> (pf1: lt1, ..., df1: it1, ...). Field order is as written.
class PointsToFormula : public Formula {
public:
  struct FieldBinding {
    std::string Field;
    const Term *Value;
  };
  PointsToFormula(const Term *Base, std::vector<FieldBinding> Fields,
                  SourceLoc L)
      : Formula(FK_PointsTo, L), Base(Base), Fields(std::move(Fields)) {}
  const Term *base() const { return Base; }
  const std::vector<FieldBinding> &fields() const { return Fields; }
  static bool classof(const Formula *F) { return F->kind() == FK_PointsTo; }

private:
  const Term *Base;
  std::vector<FieldBinding> Fields;
};

/// All binary relations. Scalar: Eq Ne Lt Le Gt Ge. Set-valued operands:
/// Eq/Ne compare extensionally, SetLt/SetLe are the paper's "every element on
/// the left is less-than / at-most every element on the right", SubsetEq is
/// inclusion, In/NotIn are membership with the element on the left.
class CmpFormula : public Formula {
public:
  enum Op : uint8_t {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    SetLt,
    SetLe,
    SubsetEq,
    In,
    NotIn
  };
  CmpFormula(Op O, const Term *L, const Term *R, SourceLoc Lc)
      : Formula(FK_Cmp, Lc), O(O), LHS(L), RHS(R) {}
  Op op() const { return O; }
  const Term *lhs() const { return LHS; }
  const Term *rhs() const { return RHS; }
  static bool classof(const Formula *F) { return F->kind() == FK_Cmp; }

private:
  Op O;
  const Term *LHS, *RHS;
};

class RecPredFormula : public Formula {
public:
  RecPredFormula(const RecDef *Def, const Term *Arg,
                 std::vector<const Term *> Stops, int Time, SourceLoc L)
      : Formula(FK_RecPred, L), Def(Def), Arg(Arg), Stops(std::move(Stops)),
        Time(Time) {}
  const RecDef *def() const { return Def; }
  const Term *arg() const { return Arg; }
  const std::vector<const Term *> &stopArgs() const { return Stops; }
  int time() const { return Time; }
  static bool classof(const Formula *F) { return F->kind() == FK_RecPred; }

private:
  const RecDef *Def;
  const Term *Arg;
  std::vector<const Term *> Stops;
  int Time;
};

/// N-ary And / Or / Sep.
class NaryFormula : public Formula {
public:
  NaryFormula(Kind K, std::vector<const Formula *> Ops, SourceLoc L)
      : Formula(K, L), Ops(std::move(Ops)) {
    assert((K == FK_And || K == FK_Or || K == FK_Sep) && "bad n-ary kind");
  }
  const std::vector<const Formula *> &operands() const { return Ops; }
  static bool classof(const Formula *F) {
    return F->kind() == FK_And || F->kind() == FK_Or || F->kind() == FK_Sep;
  }

private:
  std::vector<const Formula *> Ops;
};

class NotFormula : public Formula {
public:
  NotFormula(const Formula *Op, SourceLoc L) : Formula(FK_Not, L), Inner(Op) {}
  const Formula *operand() const { return Inner; }
  static bool classof(const Formula *F) { return F->kind() == FK_Not; }

private:
  const Formula *Inner;
};

/// vcgen only: field array <Field> at version ToVersion equals the array at
/// FromVersion with location Base overwritten by Value.
class FieldUpdateFormula : public Formula {
public:
  FieldUpdateFormula(std::string Field, int FromVersion, int ToVersion,
                     const Term *Base, const Term *Value, SourceLoc L)
      : Formula(FK_FieldUpdate, L), Field(std::move(Field)),
        FromVersion(FromVersion), ToVersion(ToVersion), Base(Base),
        Value(Value) {}
  const std::string &field() const { return Field; }
  int fromVersion() const { return FromVersion; }
  int toVersion() const { return ToVersion; }
  const Term *base() const { return Base; }
  const Term *value() const { return Value; }
  static bool classof(const Formula *F) { return F->kind() == FK_FieldUpdate; }

private:
  std::string Field;
  int FromVersion, ToVersion;
  const Term *Base;
  const Term *Value;
};

//===----------------------------------------------------------------------===//
// Lightweight isa/cast helpers (LLVM-style, kind-based)
//===----------------------------------------------------------------------===//

template <typename To, typename From> bool isa(const From *Node) {
  return To::classof(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast to incompatible AST node");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return isa<To>(Node) ? static_cast<const To *>(Node) : nullptr;
}

//===----------------------------------------------------------------------===//
// AstContext: arena ownership and factory methods
//===----------------------------------------------------------------------===//

class AstContext {
public:
  AstContext() = default;
  AstContext(const AstContext &) = delete;
  AstContext &operator=(const AstContext &) = delete;

  // Terms.
  const Term *nil(SourceLoc L = {});
  const Term *var(std::string Name, Sort S, SourceLoc L = {});
  const Term *intConst(int64_t V, SourceLoc L = {});
  const Term *inf(bool Positive, SourceLoc L = {});
  const Term *intBin(IntBinTerm::Op O, const Term *Lhs, const Term *Rhs,
                     SourceLoc L = {});
  const Term *emptySet(Sort S, SourceLoc L = {});
  const Term *singleton(const Term *Elem, Sort S, SourceLoc L = {});
  const Term *setBin(SetBinTerm::Op O, const Term *Lhs, const Term *Rhs,
                     SourceLoc L = {});
  const Term *setUnion(const Term *Lhs, const Term *Rhs) {
    return setBin(SetBinTerm::Union, Lhs, Rhs);
  }
  const Term *recFunc(const RecDef *Def, const Term *Arg,
                      std::vector<const Term *> Stops, int Time = -1,
                      SourceLoc L = {});
  const Term *fieldRead(std::string Field, const Term *Arg, Sort S,
                        int Version = -1, SourceLoc L = {});
  const Term *reach(const RecDef *Def, const Term *Arg,
                    std::vector<const Term *> Stops, int Time = -1,
                    SourceLoc L = {});
  const Term *ite(const Formula *Cond, const Term *Then, const Term *Else,
                  SourceLoc L = {});

  // Formulas.
  const Formula *boolConst(bool V, SourceLoc L = {});
  const Formula *trueF() { return boolConst(true); }
  const Formula *falseF() { return boolConst(false); }
  const Formula *emp(SourceLoc L = {});
  const Formula *pointsTo(const Term *Base,
                          std::vector<PointsToFormula::FieldBinding> Fields,
                          SourceLoc L = {});
  const Formula *cmp(CmpFormula::Op O, const Term *Lhs, const Term *Rhs,
                     SourceLoc L = {});
  const Formula *eq(const Term *Lhs, const Term *Rhs) {
    return cmp(CmpFormula::Eq, Lhs, Rhs);
  }
  const Formula *recPred(const RecDef *Def, const Term *Arg,
                         std::vector<const Term *> Stops, int Time = -1,
                         SourceLoc L = {});
  /// And/Or/Sep with flattening and unit simplification.
  const Formula *conj(std::vector<const Formula *> Ops, SourceLoc L = {});
  const Formula *disj(std::vector<const Formula *> Ops, SourceLoc L = {});
  const Formula *sep(std::vector<const Formula *> Ops, SourceLoc L = {});
  const Formula *conj2(const Formula *A, const Formula *B) {
    return conj({A, B});
  }
  const Formula *neg(const Formula *Op, SourceLoc L = {});
  const Formula *fieldUpdate(std::string Field, int FromVersion, int ToVersion,
                             const Term *Base, const Term *Value,
                             SourceLoc L = {});

private:
  template <typename T, typename... Args> const T *make(Args &&...A) {
    auto Node = std::make_unique<T>(std::forward<Args>(A)...);
    const T *Raw = Node.get();
    if constexpr (std::is_base_of_v<Term, T>)
      Terms.push_back(std::move(Node));
    else
      Formulas.push_back(std::move(Node));
    return Raw;
  }

  std::vector<std::unique_ptr<Term>> Terms;
  std::vector<std::unique_ptr<Formula>> Formulas;
};

//===----------------------------------------------------------------------===//
// Generic utilities over the AST
//===----------------------------------------------------------------------===//

/// Structural equality (ignores source locations).
bool structEq(const Term *A, const Term *B);
bool structEq(const Formula *A, const Formula *B);

/// Substitution of variables by terms (by name).
using Subst = std::map<std::string, const Term *>;
const Term *substitute(AstContext &Ctx, const Term *T, const Subst &S);
const Formula *substitute(AstContext &Ctx, const Formula *F, const Subst &S);

/// Collects the names (with sorts) of all free variables.
void collectVars(const Term *T, std::map<std::string, Sort> &Out);
void collectVars(const Formula *F, std::map<std::string, Sort> &Out);

/// Stamps a classical formula/term with heap-array versions and a boundary
/// timestamp: every FieldRead gets the version recorded for its field in
/// \p FieldVersions and every RecPred/RecFunc/Reach gets timestamp \p Time.
/// Already-stamped nodes (version/time >= 0) are left unchanged.
struct StampMap {
  std::map<std::string, int> FieldVersions;
  int Time = 0;
};
const Term *stamp(AstContext &Ctx, const Term *T, const StampMap &M);
const Formula *stamp(AstContext &Ctx, const Formula *F, const StampMap &M);

} // namespace dryad

#endif // DRYAD_DRYAD_AST_H
