//===--- defs.cpp - Recursive definition registry -------------------------===//

#include "dryad/defs.h"

using namespace dryad;

RecDef *DefRegistry::add(RecDef Def) {
  if (ByName.count(Def.Name))
    return nullptr;
  Defs.push_back(std::make_unique<RecDef>(std::move(Def)));
  RecDef *Raw = Defs.back().get();
  ByName[Raw->Name] = Raw;
  return Raw;
}

const RecDef *DefRegistry::lookup(const std::string &Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? nullptr : It->second;
}
