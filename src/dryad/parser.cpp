//===--- parser.cpp - Parser for the Dryad specification syntax -----------===//

#include "dryad/parser.h"

using namespace dryad;

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

namespace {
/// Raises the reporting of an error unless the parser is speculating.
} // namespace

static bool isCmpToken(const Token &T) {
  switch (T.K) {
  case Token::EqEq:
  case Token::NotEq:
  case Token::LessEq:
  case Token::Less:
  case Token::GreaterEq:
  case Token::Greater:
    return true;
  default:
    return T.isIdent("in") || T.isIdent("setle") || T.isIdent("setlt") ||
           T.isIdent("subset");
  }
}

void SpecParser::synchronize() {
  int Depth = 0;
  while (!Cur.atEnd()) {
    const Token &T = Cur.peek();
    if (Depth == 0 && T.is(Token::Semi)) {
      Cur.advance();
      return;
    }
    if (T.is(Token::LParen) || T.is(Token::LBrace) || T.is(Token::LBracket))
      ++Depth;
    if (T.is(Token::RParen) || T.is(Token::RBrace) || T.is(Token::RBracket))
      --Depth;
    Cur.advance();
  }
}

std::optional<Sort> SpecParser::parseSort() {
  const Token &T = Cur.peek();
  if (!T.is(Token::Ident))
    return std::nullopt;
  Sort S;
  if (T.Text == "loc")
    S = Sort::Loc;
  else if (T.Text == "int")
    S = Sort::Int;
  else if (T.Text == "bool")
    S = Sort::Bool;
  else if (T.Text == "intset")
    S = Sort::IntSet;
  else if (T.Text == "locset")
    S = Sort::LocSet;
  else if (T.Text == "msint")
    S = Sort::IntMSet;
  else
    return std::nullopt;
  Cur.advance();
  return S;
}

Sort SpecParser::sortOfVar(const VarEnv &Env, const std::string &Name,
                           SourceLoc Loc, std::optional<Sort> Expected) {
  auto It = Env.find(Name);
  if (It != Env.end())
    return It->second;
  if (!Speculating)
    Diags.error(Loc, "undeclared variable '" + Name + "'");
  return Expected.value_or(Sort::Loc);
}

//===----------------------------------------------------------------------===//
// Terms
//===----------------------------------------------------------------------===//

const Term *SpecParser::parsePrimaryTerm(VarEnv &Env,
                                         std::optional<Sort> Expected) {
  const Token &T = Cur.peek();
  SourceLoc Loc = T.Loc;

  if (T.is(Token::IntLit)) {
    Cur.advance();
    return Ctx.intConst(T.Value, Loc);
  }

  if (T.is(Token::Minus)) {
    Cur.advance();
    if (Cur.peek().is(Token::IntLit)) {
      int64_t V = Cur.advance().Value;
      return Ctx.intConst(-V, Loc);
    }
    if (Cur.peek().isIdent("inf")) {
      Cur.advance();
      return Ctx.inf(false, Loc);
    }
    if (!Speculating)
      Diags.error(Loc, "expected integer literal or 'inf' after '-'");
    return nullptr;
  }

  if (T.is(Token::LParen)) {
    Cur.advance();
    const Term *Inner = parseTerm(Env, Expected);
    if (!Inner)
      return nullptr;
    if (!Cur.match(Token::RParen)) {
      if (!Speculating)
        Diags.error(Cur.peek().Loc, "expected ')' in term");
      return nullptr;
    }
    return Inner;
  }

  if (T.is(Token::LBrace)) {
    Cur.advance();
    if (Cur.match(Token::RBrace)) {
      Sort S = (Expected && isSetSort(*Expected)) ? *Expected : Sort::IntSet;
      return Ctx.emptySet(S, Loc);
    }
    std::optional<Sort> ElemExpected;
    if (Expected && isSetSort(*Expected))
      ElemExpected = elementSort(*Expected);
    std::vector<const Term *> Elems;
    do {
      const Term *E = parseTerm(Env, ElemExpected);
      if (!E)
        return nullptr;
      Elems.push_back(E);
    } while (Cur.match(Token::Comma));
    if (!Cur.match(Token::RBrace)) {
      if (!Speculating)
        Diags.error(Cur.peek().Loc, "expected '}' closing set literal");
      return nullptr;
    }
    Sort SetSort = Elems.front()->sort() == Sort::Loc ? Sort::LocSet
                                                      : Sort::IntSet;
    if (Expected && isSetSort(*Expected))
      SetSort = *Expected;
    const Term *Acc = Ctx.singleton(Elems.front(), SetSort, Loc);
    for (size_t I = 1; I != Elems.size(); ++I)
      Acc = Ctx.setBin(SetBinTerm::Union, Acc,
                       Ctx.singleton(Elems[I], SetSort, Loc), Loc);
    return Acc;
  }

  if (!T.is(Token::Ident)) {
    if (!Speculating)
      Diags.error(Loc, "expected a term");
    return nullptr;
  }

  // Keyword-like identifiers.
  if (T.Text == "nil") {
    Cur.advance();
    return Ctx.nil(Loc);
  }
  if (T.Text == "inf") {
    Cur.advance();
    return Ctx.inf(true, Loc);
  }
  if (T.Text == "mempty") {
    Cur.advance();
    return Ctx.emptySet(Sort::IntMSet, Loc);
  }
  if (T.Text == "msingleton") {
    Cur.advance();
    if (!Cur.match(Token::LParen))
      return nullptr;
    const Term *E = parseTerm(Env, Sort::Int);
    if (!E || !Cur.match(Token::RParen))
      return nullptr;
    return Ctx.singleton(E, Sort::IntMSet, Loc);
  }
  if (T.Text == "max" || T.Text == "min") {
    IntBinTerm::Op Op = T.Text == "max" ? IntBinTerm::Max : IntBinTerm::Min;
    Cur.advance();
    if (!Cur.match(Token::LParen))
      return nullptr;
    const Term *A = parseTerm(Env, Sort::Int);
    if (!A || !Cur.match(Token::Comma))
      return nullptr;
    const Term *B = parseTerm(Env, Sort::Int);
    if (!B || !Cur.match(Token::RParen))
      return nullptr;
    return Ctx.intBin(Op, A, B, Loc);
  }
  if (T.Text == "union" || T.Text == "inter" || T.Text == "diff") {
    SetBinTerm::Op Op = T.Text == "union"   ? SetBinTerm::Union
                        : T.Text == "inter" ? SetBinTerm::Inter
                                            : SetBinTerm::Diff;
    Cur.advance();
    if (!Cur.match(Token::LParen)) {
      if (!Speculating)
        Diags.error(Loc, "expected '(' after set operator");
      return nullptr;
    }
    std::vector<const Term *> Args;
    do {
      const Term *A = parseTerm(Env, Expected);
      if (!A)
        return nullptr;
      Args.push_back(A);
    } while (Cur.match(Token::Comma));
    if (!Cur.match(Token::RParen)) {
      if (!Speculating)
        Diags.error(Cur.peek().Loc, "expected ')' in set operator");
      return nullptr;
    }
    if (Args.size() < 2) {
      if (!Speculating)
        Diags.error(Loc, "set operator needs at least two arguments");
      return nullptr;
    }
    const Term *Acc = Args[0];
    for (size_t I = 1; I != Args.size(); ++I)
      Acc = Ctx.setBin(Op, Acc, Args[I], Loc);
    return Acc;
  }

  // Recursive function application.
  if (const RecDef *Def = Defs.lookup(T.Text)) {
    if (Cur.peek(1).is(Token::LParen)) {
      if (Def->isPredicate()) {
        // A predicate is not a term; let the formula layer handle it.
        if (!Speculating)
          Diags.error(Loc, "predicate '" + T.Text + "' used as a term");
        return nullptr;
      }
      Cur.advance();
      Cur.advance(); // name, '('
      const Term *Arg = parseTerm(Env, Sort::Loc);
      if (!Arg)
        return nullptr;
      std::vector<const Term *> Stops;
      while (Cur.match(Token::Comma)) {
        const Term *St = parseTerm(Env, Sort::Loc);
        if (!St)
          return nullptr;
        Stops.push_back(St);
      }
      if (!Cur.match(Token::RParen)) {
        if (!Speculating)
          Diags.error(Cur.peek().Loc, "expected ')' in application");
        return nullptr;
      }
      if (Stops.size() != Def->StopParams.size()) {
        if (!Speculating)
          Diags.error(Loc, "'" + Def->Name + "' expects " +
                               std::to_string(1 + Def->StopParams.size()) +
                               " argument(s)");
        return nullptr;
      }
      return Ctx.recFunc(Def, Arg, std::move(Stops), -1, Loc);
    }
  }

  // Plain variable.
  Cur.advance();
  Sort S = sortOfVar(Env, T.Text, Loc, Expected);
  if (Speculating && !Env.count(T.Text))
    return nullptr;
  return Ctx.var(T.Text, S, Loc);
}

const Term *SpecParser::parseTerm(VarEnv &Env, std::optional<Sort> Expected) {
  const Term *Lhs = parsePrimaryTerm(Env, Expected);
  if (!Lhs)
    return nullptr;
  while (Cur.peek().is(Token::Plus) || Cur.peek().is(Token::Minus)) {
    // Only integer arithmetic is infix; `a - b` on sets must use diff().
    IntBinTerm::Op Op = Cur.peek().is(Token::Plus) ? IntBinTerm::Add
                                                   : IntBinTerm::Sub;
    SourceLoc Loc = Cur.advance().Loc;
    const Term *Rhs = parsePrimaryTerm(Env, Sort::Int);
    if (!Rhs)
      return nullptr;
    Lhs = Ctx.intBin(Op, Lhs, Rhs, Loc);
  }
  return Lhs;
}

const Term *SpecParser::tryParseTerm(VarEnv &Env) {
  size_t Save = Cur.Pos;
  bool OldSpec = Speculating;
  Speculating = true;
  const Term *T = parseTerm(Env, std::nullopt);
  Speculating = OldSpec;
  if (!T)
    Cur.Pos = Save;
  return T;
}

//===----------------------------------------------------------------------===//
// Formulas
//===----------------------------------------------------------------------===//

const Formula *SpecParser::parsePointsToTail(const Term *Base, VarEnv &Env) {
  SourceLoc Loc = Cur.peek().Loc;
  if (!Cur.match(Token::LParen)) {
    if (!Speculating)
      Diags.error(Loc, "expected '(' after '|->'");
    return nullptr;
  }
  std::vector<PointsToFormula::FieldBinding> Bindings;
  do {
    const Token &FieldTok = Cur.peek();
    if (!FieldTok.is(Token::Ident)) {
      if (!Speculating)
        Diags.error(FieldTok.Loc, "expected field name in points-to");
      return nullptr;
    }
    Cur.advance();
    if (!Fields.isField(FieldTok.Text)) {
      if (!Speculating)
        Diags.error(FieldTok.Loc, "unknown field '" + FieldTok.Text + "'");
      return nullptr;
    }
    if (!Cur.match(Token::Colon)) {
      if (!Speculating)
        Diags.error(Cur.peek().Loc, "expected ':' after field name");
      return nullptr;
    }
    const Term *Value = parseTerm(Env, Fields.fieldSort(FieldTok.Text));
    if (!Value)
      return nullptr;
    Bindings.push_back({FieldTok.Text, Value});
  } while (Cur.match(Token::Comma));
  if (!Cur.match(Token::RParen)) {
    if (!Speculating)
      Diags.error(Cur.peek().Loc, "expected ')' closing points-to");
    return nullptr;
  }
  return Ctx.pointsTo(Base, std::move(Bindings), Loc);
}

/// Builds a comparison, upgrading scalar/set mismatches: if one side is a
/// scalar and the other a set, the scalar is wrapped into a singleton (the
/// paper writes {k} <= keys(n) but k <= keys(n) is unambiguous); Lt/Le/Gt/Ge
/// between sets become the paper's set inequalities.
static const Formula *makeCmp(AstContext &Ctx, CmpFormula::Op Op,
                              const Term *Lhs, const Term *Rhs,
                              SourceLoc Loc) {
  // Membership keeps a scalar on the left; everything else lifts a scalar
  // against a set into a singleton comparison.
  bool IsMembership = Op == CmpFormula::In || Op == CmpFormula::NotIn;
  if (!IsMembership && isSetSort(Lhs->sort()) && isScalarSort(Rhs->sort()))
    Rhs = Ctx.singleton(Rhs, Lhs->sort(), Loc);
  if (!IsMembership && isSetSort(Rhs->sort()) && isScalarSort(Lhs->sort()))
    Lhs = Ctx.singleton(Lhs, Rhs->sort(), Loc);
  if (isSetSort(Lhs->sort()) && isSetSort(Rhs->sort())) {
    switch (Op) {
    case CmpFormula::Lt:
      Op = CmpFormula::SetLt;
      break;
    case CmpFormula::Le:
      Op = CmpFormula::SetLe;
      break;
    case CmpFormula::Gt:
      std::swap(Lhs, Rhs);
      Op = CmpFormula::SetLt;
      break;
    case CmpFormula::Ge:
      std::swap(Lhs, Rhs);
      Op = CmpFormula::SetLe;
      break;
    default:
      break;
    }
  }
  return Ctx.cmp(Op, Lhs, Rhs, Loc);
}

const Formula *SpecParser::parseAtom(VarEnv &Env) {
  const Token &T = Cur.peek();
  SourceLoc Loc = T.Loc;

  if (T.isIdent("true")) {
    Cur.advance();
    return Ctx.boolConst(true, Loc);
  }
  if (T.isIdent("false")) {
    Cur.advance();
    return Ctx.boolConst(false, Loc);
  }
  if (T.isIdent("emp")) {
    Cur.advance();
    return Ctx.emp(Loc);
  }

  // Recursive predicate application.
  if (T.is(Token::Ident) && Cur.peek(1).is(Token::LParen)) {
    if (const RecDef *Def = Defs.lookup(T.Text)) {
      if (Def->isPredicate()) {
        Cur.advance();
        Cur.advance();
        const Term *Arg = parseTerm(Env, Sort::Loc);
        if (!Arg)
          return nullptr;
        std::vector<const Term *> Stops;
        while (Cur.match(Token::Comma)) {
          const Term *St = parseTerm(Env, Sort::Loc);
          if (!St)
            return nullptr;
          Stops.push_back(St);
        }
        if (!Cur.match(Token::RParen)) {
          if (!Speculating)
            Diags.error(Cur.peek().Loc, "expected ')' in application");
          return nullptr;
        }
        if (Stops.size() != Def->StopParams.size()) {
          if (!Speculating)
            Diags.error(Loc, "'" + Def->Name + "' expects " +
                                 std::to_string(1 + Def->StopParams.size()) +
                                 " argument(s)");
          return nullptr;
        }
        return Ctx.recPred(Def, Arg, std::move(Stops), -1, Loc);
      }
    }
  }

  // Try: term followed by a relation or '|->'.
  size_t Save = Cur.Pos;
  if (const Term *Lhs = tryParseTerm(Env)) {
    const Token &Next = Cur.peek();
    if (Next.is(Token::PointsToSym)) {
      Cur.advance();
      return parsePointsToTail(Lhs, Env);
    }
    bool NegMember =
        Next.is(Token::Bang) && Cur.peek(1).isIdent("in");
    if (isCmpToken(Next) || NegMember) {
      CmpFormula::Op Op;
      if (NegMember) {
        Cur.advance();
        Cur.advance();
        Op = CmpFormula::NotIn;
      } else if (Next.is(Token::EqEq)) {
        Cur.advance();
        Op = CmpFormula::Eq;
      } else if (Next.is(Token::NotEq)) {
        Cur.advance();
        Op = CmpFormula::Ne;
      } else if (Next.is(Token::LessEq)) {
        Cur.advance();
        Op = CmpFormula::Le;
      } else if (Next.is(Token::Less)) {
        Cur.advance();
        Op = CmpFormula::Lt;
      } else if (Next.is(Token::GreaterEq)) {
        Cur.advance();
        Op = CmpFormula::Ge;
      } else if (Next.is(Token::Greater)) {
        Cur.advance();
        Op = CmpFormula::Gt;
      } else if (Next.isIdent("in")) {
        Cur.advance();
        Op = CmpFormula::In;
      } else if (Next.isIdent("setle")) {
        Cur.advance();
        Op = CmpFormula::SetLe;
      } else if (Next.isIdent("setlt")) {
        Cur.advance();
        Op = CmpFormula::SetLt;
      } else { // subset
        Cur.advance();
        Op = CmpFormula::SubsetEq;
      }
      std::optional<Sort> RhsExpected = Lhs->sort();
      if (Op == CmpFormula::In || Op == CmpFormula::NotIn)
        RhsExpected = Lhs->sort() == Sort::Loc ? Sort::LocSet : Sort::IntSet;
      const Term *Rhs = parseTerm(Env, RhsExpected);
      if (!Rhs)
        return nullptr;
      return makeCmp(Ctx, Op, Lhs, Rhs, Loc);
    }
    // Not a relation: backtrack and try other atom shapes below.
    Cur.Pos = Save;
  }

  if (Cur.match(Token::LParen)) {
    const Formula *Inner = parseFormula(Env);
    if (!Inner)
      return nullptr;
    if (!Cur.match(Token::RParen)) {
      if (!Speculating)
        Diags.error(Cur.peek().Loc, "expected ')' closing formula");
      return nullptr;
    }
    return Inner;
  }

  if (!Speculating)
    Diags.error(Loc, "expected a formula");
  return nullptr;
}

const Formula *SpecParser::parseUnaryFormula(VarEnv &Env) {
  if (Cur.peek().is(Token::Bang)) {
    SourceLoc Loc = Cur.advance().Loc;
    const Formula *Inner = parseUnaryFormula(Env);
    if (!Inner)
      return nullptr;
    return Ctx.neg(Inner, Loc);
  }
  return parseAtom(Env);
}

const Formula *SpecParser::parseConjFormula(VarEnv &Env) {
  const Formula *First = parseUnaryFormula(Env);
  if (!First)
    return nullptr;
  const Token &Next = Cur.peek();
  bool IsSep;
  if (Next.is(Token::AndAnd))
    IsSep = false;
  else if (Next.is(Token::Star))
    IsSep = true;
  else
    return First;

  std::vector<const Formula *> Ops = {First};
  Token::Kind OpKind = Next.K;
  while (Cur.peek().is(Token::AndAnd) || Cur.peek().is(Token::Star)) {
    if (!Cur.peek().is(OpKind)) {
      if (!Speculating)
        Diags.error(Cur.peek().Loc,
                    "mixing '&&' and '*' at the same level; add parentheses");
      return nullptr;
    }
    Cur.advance();
    const Formula *Op = parseUnaryFormula(Env);
    if (!Op)
      return nullptr;
    Ops.push_back(Op);
  }
  return IsSep ? Ctx.sep(std::move(Ops)) : Ctx.conj(std::move(Ops));
}

const Formula *SpecParser::parseOrFormula(VarEnv &Env) {
  const Formula *First = parseConjFormula(Env);
  if (!First)
    return nullptr;
  if (!Cur.peek().is(Token::OrOr))
    return First;
  std::vector<const Formula *> Ops = {First};
  while (Cur.match(Token::OrOr)) {
    const Formula *Op = parseConjFormula(Env);
    if (!Op)
      return nullptr;
    Ops.push_back(Op);
  }
  return Ctx.disj(std::move(Ops));
}

const Formula *SpecParser::parseFormula(VarEnv &Env) {
  return parseOrFormula(Env);
}

//===----------------------------------------------------------------------===//
// Pre-binding of points-to bound variables (the ~s of definitions)
//===----------------------------------------------------------------------===//

size_t SpecParser::findClauseEnd() const {
  int Depth = 0;
  for (size_t I = Cur.Pos, E = Cur.Toks->size(); I != E; ++I) {
    const Token &T = (*Cur.Toks)[I];
    if (T.is(Token::LParen) || T.is(Token::LBrace) || T.is(Token::LBracket))
      ++Depth;
    else if (T.is(Token::RParen) || T.is(Token::RBrace) ||
             T.is(Token::RBracket))
      --Depth;
    else if (Depth == 0 && T.is(Token::Semi))
      return I;
    else if (T.is(Token::EndOfFile))
      return I;
  }
  return Cur.Toks->size() - 1;
}

void SpecParser::preBindPointsToVars(size_t From, size_t To, VarEnv &Env) {
  const std::vector<Token> &Toks = *Cur.Toks;
  for (size_t I = From; I + 1 < To; ++I) {
    if (!Toks[I].is(Token::PointsToSym) || !Toks[I + 1].is(Token::LParen))
      continue;
    size_t J = I + 2;
    while (J + 2 < To) {
      if (!Toks[J].is(Token::Ident) || !Toks[J + 1].is(Token::Colon))
        break;
      const std::string &Field = Toks[J].Text;
      size_t V = J + 2;
      // If the bound value is a single identifier, record its sort.
      bool Simple = Toks[V].is(Token::Ident) &&
                    (Toks[V + 1].is(Token::Comma) ||
                     Toks[V + 1].is(Token::RParen));
      if (Simple && Fields.isField(Field) && !Env.count(Toks[V].Text))
        Env[Toks[V].Text] = Fields.fieldSort(Field);
      // Skip the value to the ',' or ')' at depth zero.
      int Depth = 0;
      while (V < To) {
        const Token &T = Toks[V];
        if (T.is(Token::LParen) || T.is(Token::LBrace) ||
            T.is(Token::LBracket))
          ++Depth;
        else if (T.is(Token::RParen) || T.is(Token::RBrace) ||
                 T.is(Token::RBracket)) {
          if (Depth == 0)
            break;
          --Depth;
        } else if (Depth == 0 && T.is(Token::Comma))
          break;
        ++V;
      }
      if (V >= To || Toks[V].is(Token::RParen))
        break;
      J = V + 1; // past the comma
    }
  }
}

//===----------------------------------------------------------------------===//
// Top-level declarations
//===----------------------------------------------------------------------===//

bool SpecParser::parseFieldsDecl() {
  // fields (ptr | data) name {, name} ;
  SourceLoc Loc = Cur.peek().Loc;
  Cur.advance(); // 'fields'
  bool Ptr;
  if (Cur.matchIdent("ptr"))
    Ptr = true;
  else if (Cur.matchIdent("data"))
    Ptr = false;
  else {
    Diags.error(Loc, "expected 'ptr' or 'data' after 'fields'");
    synchronize();
    return false;
  }
  do {
    const Token &T = Cur.peek();
    if (!T.is(Token::Ident)) {
      Diags.error(T.Loc, "expected field name");
      synchronize();
      return false;
    }
    Cur.advance();
    if (Ptr)
      Fields.addPointerField(T.Text);
    else
      Fields.addDataField(T.Text);
  } while (Cur.match(Token::Comma));
  if (!Cur.match(Token::Semi)) {
    Diags.error(Cur.peek().Loc, "expected ';' after fields declaration");
    synchronize();
    return false;
  }
  return true;
}

/// Parses `name [ptr f, g; stop u, v] (x)` and fills the definition header.
static bool parseDefHeader(TokenCursor &Cur, DiagEngine &Diags,
                           FieldTable &Fields, RecDef &Def) {
  const Token &NameTok = Cur.peek();
  if (!NameTok.is(Token::Ident)) {
    Diags.error(NameTok.Loc, "expected definition name");
    return false;
  }
  Cur.advance();
  Def.Name = NameTok.Text;

  if (!Cur.match(Token::LBracket)) {
    Diags.error(Cur.peek().Loc, "expected '[' after definition name");
    return false;
  }
  if (!Cur.matchIdent("ptr")) {
    Diags.error(Cur.peek().Loc, "expected 'ptr' in definition header");
    return false;
  }
  do {
    const Token &T = Cur.peek();
    if (!T.is(Token::Ident)) {
      Diags.error(T.Loc, "expected pointer field name");
      return false;
    }
    Cur.advance();
    if (!Fields.isPointerField(T.Text)) {
      Diags.error(T.Loc, "'" + T.Text + "' is not a declared pointer field");
      return false;
    }
    Def.PtrFields.push_back(T.Text);
  } while (Cur.match(Token::Comma));
  if (Cur.match(Token::Semi)) {
    if (!Cur.matchIdent("stop")) {
      Diags.error(Cur.peek().Loc, "expected 'stop' after ';' in header");
      return false;
    }
    do {
      const Token &T = Cur.peek();
      if (!T.is(Token::Ident)) {
        Diags.error(T.Loc, "expected stop parameter name");
        return false;
      }
      Cur.advance();
      Def.StopParams.push_back(T.Text);
    } while (Cur.match(Token::Comma));
  }
  if (!Cur.match(Token::RBracket)) {
    Diags.error(Cur.peek().Loc, "expected ']' in definition header");
    return false;
  }
  if (!Cur.match(Token::LParen)) {
    Diags.error(Cur.peek().Loc, "expected '(' in definition header");
    return false;
  }
  const Token &ArgTok = Cur.peek();
  if (!ArgTok.is(Token::Ident)) {
    Diags.error(ArgTok.Loc, "expected argument name");
    return false;
  }
  Cur.advance();
  Def.ArgName = ArgTok.Text;
  if (!Cur.match(Token::RParen)) {
    Diags.error(Cur.peek().Loc, "expected ')' in definition header");
    return false;
  }
  return true;
}

bool SpecParser::parsePredDef() {
  Cur.advance(); // 'pred'
  RecDef Header;
  Header.Result = Sort::Bool;
  if (!parseDefHeader(Cur, Diags, Fields, Header)) {
    synchronize();
    return false;
  }
  if (!Cur.match(Token::ColonEq)) {
    Diags.error(Cur.peek().Loc, "expected ':=' in predicate definition");
    synchronize();
    return false;
  }
  RecDef *Def = Defs.add(std::move(Header));
  if (!Def) {
    Diags.error(Cur.peek().Loc, "duplicate definition name");
    synchronize();
    return false;
  }

  VarEnv Env;
  Env[Def->ArgName] = Sort::Loc;
  for (const std::string &St : Def->StopParams)
    Env[St] = Sort::Loc;
  preBindPointsToVars(Cur.Pos, findClauseEnd(), Env);

  const Formula *Body = parseFormula(Env);
  if (!Body) {
    synchronize();
    return false;
  }
  if (!Cur.match(Token::Semi)) {
    Diags.error(Cur.peek().Loc, "expected ';' after predicate body");
    synchronize();
    return false;
  }
  Def->PredBody = Body;
  return true;
}

bool SpecParser::parseFuncDef() {
  Cur.advance(); // 'func'
  RecDef Header;
  if (!parseDefHeader(Cur, Diags, Fields, Header)) {
    synchronize();
    return false;
  }
  if (!Cur.match(Token::Colon)) {
    Diags.error(Cur.peek().Loc, "expected ':' before function result sort");
    synchronize();
    return false;
  }
  std::optional<Sort> Result = parseSort();
  if (!Result || *Result == Sort::Bool || *Result == Sort::Loc) {
    Diags.error(Cur.peek().Loc,
                "expected function result sort (int, intset, locset, msint)");
    synchronize();
    return false;
  }
  Header.Result = *Result;
  if (!Cur.match(Token::ColonEq)) {
    Diags.error(Cur.peek().Loc, "expected ':=' in function definition");
    synchronize();
    return false;
  }
  RecDef *Def = Defs.add(std::move(Header));
  if (!Def) {
    Diags.error(Cur.peek().Loc, "duplicate definition name");
    synchronize();
    return false;
  }

  bool SawDefault = false;
  while (!SawDefault) {
    VarEnv Env;
    Env[Def->ArgName] = Sort::Loc;
    for (const std::string &St : Def->StopParams)
      Env[St] = Sort::Loc;
    preBindPointsToVars(Cur.Pos, findClauseEnd(), Env);

    if (Cur.matchIdent("case")) {
      const Formula *Guard = parseFormula(Env);
      if (!Guard) {
        synchronize();
        return false;
      }
      if (!Cur.match(Token::Arrow)) {
        Diags.error(Cur.peek().Loc, "expected '->' after case guard");
        synchronize();
        return false;
      }
      const Term *Value = parseTerm(Env, Def->Result);
      if (!Value) {
        synchronize();
        return false;
      }
      Def->Cases.push_back({Guard, Value});
    } else if (Cur.matchIdent("default")) {
      if (!Cur.match(Token::Arrow)) {
        Diags.error(Cur.peek().Loc, "expected '->' after 'default'");
        synchronize();
        return false;
      }
      const Term *Value = parseTerm(Env, Def->Result);
      if (!Value) {
        synchronize();
        return false;
      }
      Def->Cases.push_back({nullptr, Value});
      SawDefault = true;
    } else {
      Diags.error(Cur.peek().Loc, "expected 'case' or 'default'");
      synchronize();
      return false;
    }
    if (!Cur.match(Token::Semi)) {
      Diags.error(Cur.peek().Loc, "expected ';' after definition case");
      synchronize();
      return false;
    }
  }
  return true;
}

bool SpecParser::parseAxiom(std::vector<Axiom> &Out) {
  SourceLoc Loc = Cur.peek().Loc;
  Cur.advance(); // 'axiom'
  Axiom Ax;
  Ax.Loc = Loc;
  if (!Cur.match(Token::LParen)) {
    Diags.error(Cur.peek().Loc, "expected '(' after 'axiom'");
    synchronize();
    return false;
  }
  VarEnv Env;
  do {
    const Token &Name = Cur.peek();
    if (!Name.is(Token::Ident)) {
      Diags.error(Name.Loc, "expected axiom parameter name");
      synchronize();
      return false;
    }
    Cur.advance();
    if (!Cur.match(Token::Colon)) {
      Diags.error(Cur.peek().Loc, "expected ':' after parameter name");
      synchronize();
      return false;
    }
    std::optional<Sort> S = parseSort();
    if (!S) {
      Diags.error(Cur.peek().Loc, "expected parameter sort");
      synchronize();
      return false;
    }
    Ax.Params.push_back({Name.Text, *S});
    Env[Name.Text] = *S;
  } while (Cur.match(Token::Comma));
  if (!Cur.match(Token::RParen) || !Cur.match(Token::Colon)) {
    Diags.error(Cur.peek().Loc, "expected ') :' after axiom parameters");
    synchronize();
    return false;
  }
  Ax.Lhs = parseFormula(Env);
  if (!Ax.Lhs) {
    synchronize();
    return false;
  }
  if (!Cur.match(Token::FatArrow)) {
    Diags.error(Cur.peek().Loc, "expected '=>' in axiom");
    synchronize();
    return false;
  }
  Ax.Rhs = parseFormula(Env);
  if (!Ax.Rhs) {
    synchronize();
    return false;
  }
  if (!Cur.match(Token::Semi)) {
    Diags.error(Cur.peek().Loc, "expected ';' after axiom");
    synchronize();
    return false;
  }
  Out.push_back(std::move(Ax));
  return true;
}
