//===--- sorts.h - Dryad sorts ----------------------------------*- C++ -*-===//
//
// Part of the Dryad natural-proofs reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sorts of the Dryad logic (paper §4.1): booleans, locations, lattice
/// integers IntL, sets of locations S(Loc), sets of integers S(Int), and
/// lattice multisets MS(Int)L. Locations are modelled as integers with
/// nil = 0 throughout the system.
///
//===----------------------------------------------------------------------===//

#ifndef DRYAD_DRYAD_SORTS_H
#define DRYAD_DRYAD_SORTS_H

#include <cstdint>

namespace dryad {

enum class Sort : uint8_t {
  Bool,
  Loc,
  Int,    ///< IntL in the paper; +/- infinity are explicit terms.
  LocSet, ///< S(Loc)
  IntSet, ///< S(Int)
  IntMSet ///< MS(Int)L
};

inline bool isSetSort(Sort S) {
  return S == Sort::LocSet || S == Sort::IntSet || S == Sort::IntMSet;
}

inline bool isScalarSort(Sort S) { return S == Sort::Loc || S == Sort::Int; }

/// The element sort of a set sort.
inline Sort elementSort(Sort S) {
  return S == Sort::LocSet ? Sort::Loc : Sort::Int;
}

inline const char *sortName(Sort S) {
  switch (S) {
  case Sort::Bool:
    return "bool";
  case Sort::Loc:
    return "loc";
  case Sort::Int:
    return "int";
  case Sort::LocSet:
    return "locset";
  case Sort::IntSet:
    return "intset";
  case Sort::IntMSet:
    return "msint";
  }
  return "<invalid>";
}

} // namespace dryad

#endif // DRYAD_DRYAD_SORTS_H
