//===--- typecheck.cpp - Dryad well-formedness checks ---------------------===//

#include "dryad/typecheck.h"
#include "dryad/printer.h"

#include <set>

using namespace dryad;

//===----------------------------------------------------------------------===//
// Separating conjunction not under negation
//===----------------------------------------------------------------------===//

static bool checkNoSepUnderNeg(const Formula *F, bool UnderNeg,
                               DiagEngine &Diags) {
  switch (F->kind()) {
  case Formula::FK_BoolConst:
  case Formula::FK_Emp:
  case Formula::FK_PointsTo:
  case Formula::FK_Cmp:
  case Formula::FK_RecPred:
  case Formula::FK_FieldUpdate:
    return true;
  case Formula::FK_Sep:
    if (UnderNeg) {
      Diags.error(F->loc(),
                  "separating conjunction may not appear under negation");
      return false;
    }
    [[fallthrough]];
  case Formula::FK_And:
  case Formula::FK_Or: {
    bool Ok = true;
    for (const Formula *Op : cast<NaryFormula>(F)->operands())
      Ok &= checkNoSepUnderNeg(Op, UnderNeg, Diags);
    return Ok;
  }
  case Formula::FK_Not:
    return checkNoSepUnderNeg(cast<NotFormula>(F)->operand(), /*UnderNeg=*/true,
                              Diags);
  }
  return true;
}

bool dryad::checkDryadFormula(const Formula *F, DiagEngine &Diags) {
  return checkNoSepUnderNeg(F, /*UnderNeg=*/false, Diags);
}

//===----------------------------------------------------------------------===//
// Definition-body restrictions
//===----------------------------------------------------------------------===//

namespace {
struct DefBodyChecker {
  DiagEngine &Diags;
  const RecDef &Def;
  bool Ok = true;

  void fail(SourceLoc Loc, const std::string &Msg) {
    Diags.error(Loc, "in definition '" + Def.Name + "': " + Msg);
    Ok = false;
  }

  void visit(const Term *T) {
    switch (T->kind()) {
    case Term::TK_IntBin:
      // The paper disallows subtraction in recursive definitions to keep the
      // functional monotone; we allow t - c with a constant on the right
      // (used by black-height style definitions) since it is still monotone
      // in the recursive arguments.
      if (cast<IntBinTerm>(T)->op() == IntBinTerm::Sub &&
          cast<IntBinTerm>(T)->rhs()->kind() != Term::TK_IntConst)
        fail(T->loc(), "subtraction of a non-constant is not allowed");
      visit(cast<IntBinTerm>(T)->lhs());
      visit(cast<IntBinTerm>(T)->rhs());
      return;
    case Term::TK_SetBin:
      if (cast<SetBinTerm>(T)->op() == SetBinTerm::Diff)
        fail(T->loc(), "set difference is not allowed");
      visit(cast<SetBinTerm>(T)->lhs());
      visit(cast<SetBinTerm>(T)->rhs());
      return;
    case Term::TK_Singleton:
      visit(cast<SingletonTerm>(T)->element());
      return;
    case Term::TK_RecFunc: {
      const auto *X = cast<RecFuncTerm>(T);
      visit(X->arg());
      for (const Term *St : X->stopArgs())
        visit(St);
      return;
    }
    case Term::TK_Ite: {
      const auto *X = cast<IteTerm>(T);
      visit(X->cond());
      visit(X->thenTerm());
      visit(X->elseTerm());
      return;
    }
    default:
      return;
    }
  }

  void visit(const Formula *F) {
    switch (F->kind()) {
    case Formula::FK_Not:
      fail(F->loc(), "negation is not allowed in definition bodies");
      return;
    case Formula::FK_PointsTo: {
      const auto *X = cast<PointsToFormula>(F);
      visit(X->base());
      for (const auto &FB : X->fields())
        visit(FB.Value);
      return;
    }
    case Formula::FK_Cmp:
      visit(cast<CmpFormula>(F)->lhs());
      visit(cast<CmpFormula>(F)->rhs());
      return;
    case Formula::FK_RecPred: {
      const auto *X = cast<RecPredFormula>(F);
      visit(X->arg());
      for (const Term *St : X->stopArgs())
        visit(St);
      return;
    }
    case Formula::FK_And:
    case Formula::FK_Or:
    case Formula::FK_Sep:
      for (const Formula *Op : cast<NaryFormula>(F)->operands())
        visit(Op);
      return;
    default:
      return;
    }
  }
};

/// Collects variables bound (transitively) by points-to atoms rooted at the
/// definition argument: a variable counts as bound when the base of its
/// points-to is the argument or another bound variable.
static void collectBindingEdges(
    const Formula *F,
    std::vector<std::pair<std::string, std::string>> &Edges) {
  switch (F->kind()) {
  case Formula::FK_PointsTo: {
    const auto *X = cast<PointsToFormula>(F);
    if (const auto *V = dyn_cast<VarTerm>(X->base()))
      for (const auto &FB : X->fields())
        if (const auto *BV = dyn_cast<VarTerm>(FB.Value))
          Edges.push_back({V->name(), BV->name()});
    return;
  }
  case Formula::FK_And:
  case Formula::FK_Or:
  case Formula::FK_Sep:
    for (const Formula *Op : cast<NaryFormula>(F)->operands())
      collectBindingEdges(Op, Edges);
    return;
  default:
    return;
  }
}

static void collectBoundVars(const Formula *F, const std::string &ArgName,
                             std::set<std::string> &Out) {
  (void)ArgName;
  std::vector<std::pair<std::string, std::string>> Edges;
  collectBindingEdges(F, Edges);
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (const auto &[Base, Var] : Edges)
      if (Out.count(Base) && Out.insert(Var).second)
        Progress = true;
  }
}
} // namespace

static bool checkOneDef(const RecDef &Def, DiagEngine &Diags) {
  DefBodyChecker Checker{Diags, Def};

  std::vector<const Formula *> BodyFormulas;
  std::vector<const Term *> BodyTerms;
  if (Def.isPredicate()) {
    BodyFormulas.push_back(Def.PredBody);
  } else {
    for (const RecDef::Case &C : Def.Cases) {
      if (C.Guard)
        BodyFormulas.push_back(C.Guard);
      BodyTerms.push_back(C.Value);
    }
  }

  std::set<std::string> Bound;
  Bound.insert(Def.ArgName);
  for (const std::string &St : Def.StopParams)
    Bound.insert(St);
  for (const Formula *F : BodyFormulas) {
    Checker.visit(F);
    collectBoundVars(F, Def.ArgName, Bound);
  }
  for (const Term *T : BodyTerms)
    Checker.visit(T);

  std::map<std::string, Sort> Free;
  for (const Formula *F : BodyFormulas)
    collectVars(F, Free);
  for (const Term *T : BodyTerms)
    collectVars(T, Free);
  for (const auto &[Name, S] : Free) {
    (void)S;
    if (!Bound.count(Name)) {
      Diags.error({}, "in definition '" + Def.Name + "': variable '" + Name +
                          "' is not bound by a points-to on '" + Def.ArgName +
                          "'");
      Checker.Ok = false;
    }
  }
  return Checker.Ok;
}

bool dryad::checkDefs(const DefRegistry &Defs, DiagEngine &Diags) {
  bool Ok = true;
  for (const auto &Def : Defs.all()) {
    if (Def->isPredicate()) {
      if (!Def->PredBody) {
        Diags.error({}, "predicate '" + Def->Name + "' has no body");
        Ok = false;
        continue;
      }
    } else if (Def->Cases.empty() || Def->Cases.back().Guard != nullptr) {
      Diags.error({}, "function '" + Def->Name + "' must end with 'default'");
      Ok = false;
      continue;
    }
    Ok &= checkOneDef(*Def, Diags);
  }
  return Ok;
}
