//===--- ast.cpp - AST factories and generic utilities --------------------===//

#include "dryad/ast.h"
#include "dryad/defs.h"

using namespace dryad;

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

const Term *AstContext::nil(SourceLoc L) { return make<NilTerm>(L); }

const Term *AstContext::var(std::string Name, Sort S, SourceLoc L) {
  return make<VarTerm>(std::move(Name), S, L);
}

const Term *AstContext::intConst(int64_t V, SourceLoc L) {
  return make<IntConstTerm>(V, L);
}

const Term *AstContext::inf(bool Positive, SourceLoc L) {
  return make<InfTerm>(Positive, L);
}

const Term *AstContext::intBin(IntBinTerm::Op O, const Term *Lhs,
                               const Term *Rhs, SourceLoc L) {
  return make<IntBinTerm>(O, Lhs, Rhs, L);
}

const Term *AstContext::emptySet(Sort S, SourceLoc L) {
  return make<EmptySetTerm>(S, L);
}

const Term *AstContext::singleton(const Term *Elem, Sort S, SourceLoc L) {
  return make<SingletonTerm>(Elem, S, L);
}

const Term *AstContext::setBin(SetBinTerm::Op O, const Term *Lhs,
                               const Term *Rhs, SourceLoc L) {
  assert(Lhs->sort() == Rhs->sort() ||
         (isSetSort(Lhs->sort()) && isSetSort(Rhs->sort())));
  // Simplify unions/differences with the empty set; keeps generated VCs
  // readable.
  if (O == SetBinTerm::Union) {
    if (Lhs->kind() == Term::TK_EmptySet)
      return Rhs;
    if (Rhs->kind() == Term::TK_EmptySet)
      return Lhs;
  }
  if (O == SetBinTerm::Diff && Rhs->kind() == Term::TK_EmptySet)
    return Lhs;
  return make<SetBinTerm>(O, Lhs, Rhs, Lhs->sort(), L);
}

const Term *AstContext::recFunc(const RecDef *Def, const Term *Arg,
                                std::vector<const Term *> Stops, int Time,
                                SourceLoc L) {
  return make<RecFuncTerm>(Def, Arg, std::move(Stops), Def->Result, Time, L);
}

const Term *AstContext::fieldRead(std::string Field, const Term *Arg, Sort S,
                                  int Version, SourceLoc L) {
  return make<FieldReadTerm>(std::move(Field), Arg, S, Version, L);
}

const Term *AstContext::reach(const RecDef *Def, const Term *Arg,
                              std::vector<const Term *> Stops, int Time,
                              SourceLoc L) {
  return make<ReachTerm>(Def, Arg, std::move(Stops), Time, L);
}

const Term *AstContext::ite(const Formula *Cond, const Term *Then,
                            const Term *Else, SourceLoc L) {
  return make<IteTerm>(Cond, Then, Else, Then->sort(), L);
}

const Formula *AstContext::boolConst(bool V, SourceLoc L) {
  return make<BoolConstFormula>(V, L);
}

const Formula *AstContext::emp(SourceLoc L) { return make<EmpFormula>(L); }

const Formula *
AstContext::pointsTo(const Term *Base,
                     std::vector<PointsToFormula::FieldBinding> Fields,
                     SourceLoc L) {
  return make<PointsToFormula>(Base, std::move(Fields), L);
}

const Formula *AstContext::cmp(CmpFormula::Op O, const Term *Lhs,
                               const Term *Rhs, SourceLoc L) {
  return make<CmpFormula>(O, Lhs, Rhs, L);
}

const Formula *AstContext::recPred(const RecDef *Def, const Term *Arg,
                                   std::vector<const Term *> Stops, int Time,
                                   SourceLoc L) {
  return make<RecPredFormula>(Def, Arg, std::move(Stops), Time, L);
}

const Formula *AstContext::conj(std::vector<const Formula *> Ops,
                                SourceLoc L) {
  std::vector<const Formula *> Flat;
  for (const Formula *Op : Ops) {
    if (const auto *BC = dyn_cast<BoolConstFormula>(Op)) {
      if (BC->value())
        continue;
      return Op; // false absorbs
    }
    if (Op->kind() == Formula::FK_And) {
      const auto &Inner = cast<NaryFormula>(Op)->operands();
      Flat.insert(Flat.end(), Inner.begin(), Inner.end());
      continue;
    }
    Flat.push_back(Op);
  }
  if (Flat.empty())
    return trueF();
  if (Flat.size() == 1)
    return Flat.front();
  return make<NaryFormula>(Formula::FK_And, std::move(Flat), L);
}

const Formula *AstContext::disj(std::vector<const Formula *> Ops,
                                SourceLoc L) {
  std::vector<const Formula *> Flat;
  for (const Formula *Op : Ops) {
    if (const auto *BC = dyn_cast<BoolConstFormula>(Op)) {
      if (!BC->value())
        continue;
      return Op; // true absorbs
    }
    if (Op->kind() == Formula::FK_Or) {
      const auto &Inner = cast<NaryFormula>(Op)->operands();
      Flat.insert(Flat.end(), Inner.begin(), Inner.end());
      continue;
    }
    Flat.push_back(Op);
  }
  if (Flat.empty())
    return falseF();
  if (Flat.size() == 1)
    return Flat.front();
  return make<NaryFormula>(Formula::FK_Or, std::move(Flat), L);
}

const Formula *AstContext::sep(std::vector<const Formula *> Ops, SourceLoc L) {
  std::vector<const Formula *> Flat;
  for (const Formula *Op : Ops) {
    if (const auto *BC = dyn_cast<BoolConstFormula>(Op)) {
      if (!BC->value())
        return Op; // false absorbs
      Flat.push_back(Op); // `true` is heap-dependent under *, keep it
      continue;
    }
    if (Op->kind() == Formula::FK_Sep) {
      const auto &Inner = cast<NaryFormula>(Op)->operands();
      Flat.insert(Flat.end(), Inner.begin(), Inner.end());
      continue;
    }
    Flat.push_back(Op);
  }
  if (Flat.empty())
    return emp(L);
  if (Flat.size() == 1)
    return Flat.front();
  return make<NaryFormula>(Formula::FK_Sep, std::move(Flat), L);
}

const Formula *AstContext::neg(const Formula *Op, SourceLoc L) {
  if (const auto *BC = dyn_cast<BoolConstFormula>(Op))
    return boolConst(!BC->value(), L);
  if (const auto *N = dyn_cast<NotFormula>(Op))
    return N->operand();
  return make<NotFormula>(Op, L);
}

const Formula *AstContext::fieldUpdate(std::string Field, int FromVersion,
                                       int ToVersion, const Term *Base,
                                       const Term *Value, SourceLoc L) {
  return make<FieldUpdateFormula>(std::move(Field), FromVersion, ToVersion,
                                  Base, Value, L);
}

//===----------------------------------------------------------------------===//
// Structural equality
//===----------------------------------------------------------------------===//

static bool eqTerms(const std::vector<const Term *> &A,
                    const std::vector<const Term *> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    if (!structEq(A[I], B[I]))
      return false;
  return true;
}

bool dryad::structEq(const Term *A, const Term *B) {
  if (A == B)
    return true;
  if (A->kind() != B->kind() || A->sort() != B->sort())
    return false;
  switch (A->kind()) {
  case Term::TK_Nil:
    return true;
  case Term::TK_Var:
    return cast<VarTerm>(A)->name() == cast<VarTerm>(B)->name();
  case Term::TK_IntConst:
    return cast<IntConstTerm>(A)->value() == cast<IntConstTerm>(B)->value();
  case Term::TK_Inf:
    return cast<InfTerm>(A)->isPositive() == cast<InfTerm>(B)->isPositive();
  case Term::TK_IntBin: {
    const auto *X = cast<IntBinTerm>(A), *Y = cast<IntBinTerm>(B);
    return X->op() == Y->op() && structEq(X->lhs(), Y->lhs()) &&
           structEq(X->rhs(), Y->rhs());
  }
  case Term::TK_EmptySet:
    return true;
  case Term::TK_Singleton:
    return structEq(cast<SingletonTerm>(A)->element(),
                    cast<SingletonTerm>(B)->element());
  case Term::TK_SetBin: {
    const auto *X = cast<SetBinTerm>(A), *Y = cast<SetBinTerm>(B);
    return X->op() == Y->op() && structEq(X->lhs(), Y->lhs()) &&
           structEq(X->rhs(), Y->rhs());
  }
  case Term::TK_RecFunc: {
    const auto *X = cast<RecFuncTerm>(A), *Y = cast<RecFuncTerm>(B);
    return X->def() == Y->def() && X->time() == Y->time() &&
           structEq(X->arg(), Y->arg()) &&
           eqTerms(X->stopArgs(), Y->stopArgs());
  }
  case Term::TK_FieldRead: {
    const auto *X = cast<FieldReadTerm>(A), *Y = cast<FieldReadTerm>(B);
    return X->field() == Y->field() && X->version() == Y->version() &&
           structEq(X->arg(), Y->arg());
  }
  case Term::TK_Reach: {
    const auto *X = cast<ReachTerm>(A), *Y = cast<ReachTerm>(B);
    return X->def() == Y->def() && X->time() == Y->time() &&
           structEq(X->arg(), Y->arg()) &&
           eqTerms(X->stopArgs(), Y->stopArgs());
  }
  case Term::TK_Ite: {
    const auto *X = cast<IteTerm>(A), *Y = cast<IteTerm>(B);
    return structEq(X->cond(), Y->cond()) &&
           structEq(X->thenTerm(), Y->thenTerm()) &&
           structEq(X->elseTerm(), Y->elseTerm());
  }
  }
  return false;
}

bool dryad::structEq(const Formula *A, const Formula *B) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case Formula::FK_BoolConst:
    return cast<BoolConstFormula>(A)->value() ==
           cast<BoolConstFormula>(B)->value();
  case Formula::FK_Emp:
    return true;
  case Formula::FK_PointsTo: {
    const auto *X = cast<PointsToFormula>(A), *Y = cast<PointsToFormula>(B);
    if (!structEq(X->base(), Y->base()) ||
        X->fields().size() != Y->fields().size())
      return false;
    for (size_t I = 0, E = X->fields().size(); I != E; ++I)
      if (X->fields()[I].Field != Y->fields()[I].Field ||
          !structEq(X->fields()[I].Value, Y->fields()[I].Value))
        return false;
    return true;
  }
  case Formula::FK_Cmp: {
    const auto *X = cast<CmpFormula>(A), *Y = cast<CmpFormula>(B);
    return X->op() == Y->op() && structEq(X->lhs(), Y->lhs()) &&
           structEq(X->rhs(), Y->rhs());
  }
  case Formula::FK_RecPred: {
    const auto *X = cast<RecPredFormula>(A), *Y = cast<RecPredFormula>(B);
    return X->def() == Y->def() && X->time() == Y->time() &&
           structEq(X->arg(), Y->arg()) &&
           eqTerms(X->stopArgs(), Y->stopArgs());
  }
  case Formula::FK_And:
  case Formula::FK_Or:
  case Formula::FK_Sep: {
    const auto *X = cast<NaryFormula>(A), *Y = cast<NaryFormula>(B);
    if (X->operands().size() != Y->operands().size())
      return false;
    for (size_t I = 0, E = X->operands().size(); I != E; ++I)
      if (!structEq(X->operands()[I], Y->operands()[I]))
        return false;
    return true;
  }
  case Formula::FK_Not:
    return structEq(cast<NotFormula>(A)->operand(),
                    cast<NotFormula>(B)->operand());
  case Formula::FK_FieldUpdate: {
    const auto *X = cast<FieldUpdateFormula>(A),
               *Y = cast<FieldUpdateFormula>(B);
    return X->field() == Y->field() &&
           X->fromVersion() == Y->fromVersion() &&
           X->toVersion() == Y->toVersion() &&
           structEq(X->base(), Y->base()) && structEq(X->value(), Y->value());
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

static std::vector<const Term *> substAll(AstContext &Ctx,
                                          const std::vector<const Term *> &Ts,
                                          const Subst &S) {
  std::vector<const Term *> Out;
  Out.reserve(Ts.size());
  for (const Term *T : Ts)
    Out.push_back(substitute(Ctx, T, S));
  return Out;
}

const Term *dryad::substitute(AstContext &Ctx, const Term *T, const Subst &S) {
  switch (T->kind()) {
  case Term::TK_Nil:
  case Term::TK_IntConst:
  case Term::TK_Inf:
  case Term::TK_EmptySet:
    return T;
  case Term::TK_Var: {
    auto It = S.find(cast<VarTerm>(T)->name());
    return It == S.end() ? T : It->second;
  }
  case Term::TK_IntBin: {
    const auto *X = cast<IntBinTerm>(T);
    return Ctx.intBin(X->op(), substitute(Ctx, X->lhs(), S),
                      substitute(Ctx, X->rhs(), S), T->loc());
  }
  case Term::TK_Singleton: {
    const auto *X = cast<SingletonTerm>(T);
    return Ctx.singleton(substitute(Ctx, X->element(), S), T->sort(),
                         T->loc());
  }
  case Term::TK_SetBin: {
    const auto *X = cast<SetBinTerm>(T);
    return Ctx.setBin(X->op(), substitute(Ctx, X->lhs(), S),
                      substitute(Ctx, X->rhs(), S), T->loc());
  }
  case Term::TK_RecFunc: {
    const auto *X = cast<RecFuncTerm>(T);
    return Ctx.recFunc(X->def(), substitute(Ctx, X->arg(), S),
                       substAll(Ctx, X->stopArgs(), S), X->time(), T->loc());
  }
  case Term::TK_FieldRead: {
    const auto *X = cast<FieldReadTerm>(T);
    return Ctx.fieldRead(X->field(), substitute(Ctx, X->arg(), S), T->sort(),
                         X->version(), T->loc());
  }
  case Term::TK_Reach: {
    const auto *X = cast<ReachTerm>(T);
    return Ctx.reach(X->def(), substitute(Ctx, X->arg(), S),
                     substAll(Ctx, X->stopArgs(), S), X->time(), T->loc());
  }
  case Term::TK_Ite: {
    const auto *X = cast<IteTerm>(T);
    return Ctx.ite(substitute(Ctx, X->cond(), S),
                   substitute(Ctx, X->thenTerm(), S),
                   substitute(Ctx, X->elseTerm(), S), T->loc());
  }
  }
  return T;
}

const Formula *dryad::substitute(AstContext &Ctx, const Formula *F,
                                 const Subst &S) {
  switch (F->kind()) {
  case Formula::FK_BoolConst:
  case Formula::FK_Emp:
    return F;
  case Formula::FK_PointsTo: {
    const auto *X = cast<PointsToFormula>(F);
    std::vector<PointsToFormula::FieldBinding> Fields;
    Fields.reserve(X->fields().size());
    for (const auto &FB : X->fields())
      Fields.push_back({FB.Field, substitute(Ctx, FB.Value, S)});
    return Ctx.pointsTo(substitute(Ctx, X->base(), S), std::move(Fields),
                        F->loc());
  }
  case Formula::FK_Cmp: {
    const auto *X = cast<CmpFormula>(F);
    return Ctx.cmp(X->op(), substitute(Ctx, X->lhs(), S),
                   substitute(Ctx, X->rhs(), S), F->loc());
  }
  case Formula::FK_RecPred: {
    const auto *X = cast<RecPredFormula>(F);
    return Ctx.recPred(X->def(), substitute(Ctx, X->arg(), S),
                       substAll(Ctx, X->stopArgs(), S), X->time(), F->loc());
  }
  case Formula::FK_And:
  case Formula::FK_Or:
  case Formula::FK_Sep: {
    const auto *X = cast<NaryFormula>(F);
    std::vector<const Formula *> Ops;
    Ops.reserve(X->operands().size());
    for (const Formula *Op : X->operands())
      Ops.push_back(substitute(Ctx, Op, S));
    if (F->kind() == Formula::FK_And)
      return Ctx.conj(std::move(Ops), F->loc());
    if (F->kind() == Formula::FK_Or)
      return Ctx.disj(std::move(Ops), F->loc());
    return Ctx.sep(std::move(Ops), F->loc());
  }
  case Formula::FK_Not:
    return Ctx.neg(substitute(Ctx, cast<NotFormula>(F)->operand(), S),
                   F->loc());
  case Formula::FK_FieldUpdate: {
    const auto *X = cast<FieldUpdateFormula>(F);
    return Ctx.fieldUpdate(X->field(), X->fromVersion(), X->toVersion(),
                           substitute(Ctx, X->base(), S),
                           substitute(Ctx, X->value(), S), F->loc());
  }
  }
  return F;
}

//===----------------------------------------------------------------------===//
// Free variable collection
//===----------------------------------------------------------------------===//

void dryad::collectVars(const Term *T, std::map<std::string, Sort> &Out) {
  switch (T->kind()) {
  case Term::TK_Nil:
  case Term::TK_IntConst:
  case Term::TK_Inf:
  case Term::TK_EmptySet:
    return;
  case Term::TK_Var:
    Out[cast<VarTerm>(T)->name()] = T->sort();
    return;
  case Term::TK_IntBin:
    collectVars(cast<IntBinTerm>(T)->lhs(), Out);
    collectVars(cast<IntBinTerm>(T)->rhs(), Out);
    return;
  case Term::TK_Singleton:
    collectVars(cast<SingletonTerm>(T)->element(), Out);
    return;
  case Term::TK_SetBin:
    collectVars(cast<SetBinTerm>(T)->lhs(), Out);
    collectVars(cast<SetBinTerm>(T)->rhs(), Out);
    return;
  case Term::TK_RecFunc: {
    const auto *X = cast<RecFuncTerm>(T);
    collectVars(X->arg(), Out);
    for (const Term *St : X->stopArgs())
      collectVars(St, Out);
    return;
  }
  case Term::TK_FieldRead:
    collectVars(cast<FieldReadTerm>(T)->arg(), Out);
    return;
  case Term::TK_Reach: {
    const auto *X = cast<ReachTerm>(T);
    collectVars(X->arg(), Out);
    for (const Term *St : X->stopArgs())
      collectVars(St, Out);
    return;
  }
  case Term::TK_Ite: {
    const auto *X = cast<IteTerm>(T);
    collectVars(X->cond(), Out);
    collectVars(X->thenTerm(), Out);
    collectVars(X->elseTerm(), Out);
    return;
  }
  }
}

void dryad::collectVars(const Formula *F, std::map<std::string, Sort> &Out) {
  switch (F->kind()) {
  case Formula::FK_BoolConst:
  case Formula::FK_Emp:
    return;
  case Formula::FK_PointsTo: {
    const auto *X = cast<PointsToFormula>(F);
    collectVars(X->base(), Out);
    for (const auto &FB : X->fields())
      collectVars(FB.Value, Out);
    return;
  }
  case Formula::FK_Cmp:
    collectVars(cast<CmpFormula>(F)->lhs(), Out);
    collectVars(cast<CmpFormula>(F)->rhs(), Out);
    return;
  case Formula::FK_RecPred: {
    const auto *X = cast<RecPredFormula>(F);
    collectVars(X->arg(), Out);
    for (const Term *St : X->stopArgs())
      collectVars(St, Out);
    return;
  }
  case Formula::FK_And:
  case Formula::FK_Or:
  case Formula::FK_Sep:
    for (const Formula *Op : cast<NaryFormula>(F)->operands())
      collectVars(Op, Out);
    return;
  case Formula::FK_Not:
    collectVars(cast<NotFormula>(F)->operand(), Out);
    return;
  case Formula::FK_FieldUpdate:
    collectVars(cast<FieldUpdateFormula>(F)->base(), Out);
    collectVars(cast<FieldUpdateFormula>(F)->value(), Out);
    return;
  }
}

//===----------------------------------------------------------------------===//
// Stamping with heap versions / timestamps
//===----------------------------------------------------------------------===//

static int fieldVersion(const StampMap &M, const std::string &Field) {
  auto It = M.FieldVersions.find(Field);
  assert(It != M.FieldVersions.end() && "stamping unknown field");
  return It->second;
}

const Term *dryad::stamp(AstContext &Ctx, const Term *T, const StampMap &M) {
  switch (T->kind()) {
  case Term::TK_Nil:
  case Term::TK_Var:
  case Term::TK_IntConst:
  case Term::TK_Inf:
  case Term::TK_EmptySet:
    return T;
  case Term::TK_IntBin: {
    const auto *X = cast<IntBinTerm>(T);
    return Ctx.intBin(X->op(), stamp(Ctx, X->lhs(), M), stamp(Ctx, X->rhs(), M),
                      T->loc());
  }
  case Term::TK_Singleton: {
    const auto *X = cast<SingletonTerm>(T);
    return Ctx.singleton(stamp(Ctx, X->element(), M), T->sort(), T->loc());
  }
  case Term::TK_SetBin: {
    const auto *X = cast<SetBinTerm>(T);
    return Ctx.setBin(X->op(), stamp(Ctx, X->lhs(), M), stamp(Ctx, X->rhs(), M),
                      T->loc());
  }
  case Term::TK_RecFunc: {
    const auto *X = cast<RecFuncTerm>(T);
    std::vector<const Term *> Stops;
    for (const Term *St : X->stopArgs())
      Stops.push_back(stamp(Ctx, St, M));
    int Time = X->time() >= 0 ? X->time() : M.Time;
    return Ctx.recFunc(X->def(), stamp(Ctx, X->arg(), M), std::move(Stops),
                       Time, T->loc());
  }
  case Term::TK_FieldRead: {
    const auto *X = cast<FieldReadTerm>(T);
    int Ver = X->version() >= 0 ? X->version() : fieldVersion(M, X->field());
    return Ctx.fieldRead(X->field(), stamp(Ctx, X->arg(), M), T->sort(), Ver,
                         T->loc());
  }
  case Term::TK_Reach: {
    const auto *X = cast<ReachTerm>(T);
    std::vector<const Term *> Stops;
    for (const Term *St : X->stopArgs())
      Stops.push_back(stamp(Ctx, St, M));
    int Time = X->time() >= 0 ? X->time() : M.Time;
    return Ctx.reach(X->def(), stamp(Ctx, X->arg(), M), std::move(Stops), Time,
                     T->loc());
  }
  case Term::TK_Ite: {
    const auto *X = cast<IteTerm>(T);
    return Ctx.ite(stamp(Ctx, X->cond(), M), stamp(Ctx, X->thenTerm(), M),
                   stamp(Ctx, X->elseTerm(), M), T->loc());
  }
  }
  return T;
}

const Formula *dryad::stamp(AstContext &Ctx, const Formula *F,
                            const StampMap &M) {
  switch (F->kind()) {
  case Formula::FK_BoolConst:
  case Formula::FK_Emp:
    return F;
  case Formula::FK_PointsTo: {
    const auto *X = cast<PointsToFormula>(F);
    std::vector<PointsToFormula::FieldBinding> Fields;
    for (const auto &FB : X->fields())
      Fields.push_back({FB.Field, stamp(Ctx, FB.Value, M)});
    return Ctx.pointsTo(stamp(Ctx, X->base(), M), std::move(Fields), F->loc());
  }
  case Formula::FK_Cmp: {
    const auto *X = cast<CmpFormula>(F);
    return Ctx.cmp(X->op(), stamp(Ctx, X->lhs(), M), stamp(Ctx, X->rhs(), M),
                   F->loc());
  }
  case Formula::FK_RecPred: {
    const auto *X = cast<RecPredFormula>(F);
    std::vector<const Term *> Stops;
    for (const Term *St : X->stopArgs())
      Stops.push_back(stamp(Ctx, St, M));
    int Time = X->time() >= 0 ? X->time() : M.Time;
    return Ctx.recPred(X->def(), stamp(Ctx, X->arg(), M), std::move(Stops),
                       Time, F->loc());
  }
  case Formula::FK_And:
  case Formula::FK_Or:
  case Formula::FK_Sep: {
    const auto *X = cast<NaryFormula>(F);
    std::vector<const Formula *> Ops;
    for (const Formula *Op : X->operands())
      Ops.push_back(stamp(Ctx, Op, M));
    if (F->kind() == Formula::FK_And)
      return Ctx.conj(std::move(Ops), F->loc());
    if (F->kind() == Formula::FK_Or)
      return Ctx.disj(std::move(Ops), F->loc());
    return Ctx.sep(std::move(Ops), F->loc());
  }
  case Formula::FK_Not:
    return Ctx.neg(stamp(Ctx, cast<NotFormula>(F)->operand(), M), F->loc());
  case Formula::FK_FieldUpdate: {
    const auto *X = cast<FieldUpdateFormula>(F);
    return Ctx.fieldUpdate(X->field(), X->fromVersion(), X->toVersion(),
                           stamp(Ctx, X->base(), M), stamp(Ctx, X->value(), M),
                           F->loc());
  }
  }
  return F;
}
