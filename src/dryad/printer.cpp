//===--- printer.cpp - Pretty-printing for the AST ------------------------===//

#include "dryad/printer.h"

using namespace dryad;

static void printTerm(const Term *T, std::string &Out);
static void printFormula(const Formula *F, std::string &Out, int Prec);

static void printRecSuffix(int Time, std::string &Out) {
  if (Time >= 0) {
    Out += '@';
    Out += std::to_string(Time);
  }
}

static void printArgs(const Term *Arg, const std::vector<const Term *> &Stops,
                      std::string &Out) {
  Out += '(';
  printTerm(Arg, Out);
  for (const Term *St : Stops) {
    Out += ", ";
    printTerm(St, Out);
  }
  Out += ')';
}

static void printTerm(const Term *T, std::string &Out) {
  switch (T->kind()) {
  case Term::TK_Nil:
    Out += "nil";
    return;
  case Term::TK_Var:
    Out += cast<VarTerm>(T)->name();
    return;
  case Term::TK_IntConst:
    Out += std::to_string(cast<IntConstTerm>(T)->value());
    return;
  case Term::TK_Inf:
    Out += cast<InfTerm>(T)->isPositive() ? "inf" : "-inf";
    return;
  case Term::TK_IntBin: {
    const auto *X = cast<IntBinTerm>(T);
    if (X->op() == IntBinTerm::Max || X->op() == IntBinTerm::Min) {
      Out += X->op() == IntBinTerm::Max ? "max(" : "min(";
      printTerm(X->lhs(), Out);
      Out += ", ";
      printTerm(X->rhs(), Out);
      Out += ')';
      return;
    }
    Out += '(';
    printTerm(X->lhs(), Out);
    Out += X->op() == IntBinTerm::Add ? " + " : " - ";
    printTerm(X->rhs(), Out);
    Out += ')';
    return;
  }
  case Term::TK_EmptySet:
    Out += T->sort() == Sort::IntMSet ? "m{}" : "{}";
    return;
  case Term::TK_Singleton: {
    const auto *X = cast<SingletonTerm>(T);
    if (T->sort() == Sort::IntMSet)
      Out += 'm';
    Out += '{';
    printTerm(X->element(), Out);
    Out += '}';
    return;
  }
  case Term::TK_SetBin: {
    const auto *X = cast<SetBinTerm>(T);
    switch (X->op()) {
    case SetBinTerm::Union:
      Out += "union(";
      break;
    case SetBinTerm::Inter:
      Out += "inter(";
      break;
    case SetBinTerm::Diff:
      Out += "diff(";
      break;
    }
    printTerm(X->lhs(), Out);
    Out += ", ";
    printTerm(X->rhs(), Out);
    Out += ')';
    return;
  }
  case Term::TK_RecFunc: {
    const auto *X = cast<RecFuncTerm>(T);
    Out += X->def()->Name;
    printRecSuffix(X->time(), Out);
    printArgs(X->arg(), X->stopArgs(), Out);
    return;
  }
  case Term::TK_FieldRead: {
    const auto *X = cast<FieldReadTerm>(T);
    Out += X->field();
    printRecSuffix(X->version(), Out);
    Out += '(';
    printTerm(X->arg(), Out);
    Out += ')';
    return;
  }
  case Term::TK_Reach: {
    const auto *X = cast<ReachTerm>(T);
    Out += "reach_";
    Out += X->def()->Name;
    printRecSuffix(X->time(), Out);
    printArgs(X->arg(), X->stopArgs(), Out);
    return;
  }
  case Term::TK_Ite: {
    const auto *X = cast<IteTerm>(T);
    Out += "ite(";
    printFormula(X->cond(), Out, 0);
    Out += ", ";
    printTerm(X->thenTerm(), Out);
    Out += ", ";
    printTerm(X->elseTerm(), Out);
    Out += ')';
    return;
  }
  }
}

static const char *cmpOpName(CmpFormula::Op O) {
  switch (O) {
  case CmpFormula::Eq:
    return " == ";
  case CmpFormula::Ne:
    return " != ";
  case CmpFormula::Lt:
    return " < ";
  case CmpFormula::Le:
    return " <= ";
  case CmpFormula::Gt:
    return " > ";
  case CmpFormula::Ge:
    return " >= ";
  case CmpFormula::SetLt:
    return " setlt ";
  case CmpFormula::SetLe:
    return " setle ";
  case CmpFormula::SubsetEq:
    return " subset ";
  case CmpFormula::In:
    return " in ";
  case CmpFormula::NotIn:
    return " !in ";
  }
  return " ?? ";
}

// Precedence: Or=1, And/Sep=2, Not=3, atoms=4.
static void printFormula(const Formula *F, std::string &Out, int Prec) {
  switch (F->kind()) {
  case Formula::FK_BoolConst:
    Out += cast<BoolConstFormula>(F)->value() ? "true" : "false";
    return;
  case Formula::FK_Emp:
    Out += "emp";
    return;
  case Formula::FK_PointsTo: {
    const auto *X = cast<PointsToFormula>(F);
    printTerm(X->base(), Out);
    Out += " |-> (";
    bool First = true;
    for (const auto &FB : X->fields()) {
      if (!First)
        Out += ", ";
      First = false;
      Out += FB.Field;
      Out += ": ";
      printTerm(FB.Value, Out);
    }
    Out += ')';
    return;
  }
  case Formula::FK_Cmp: {
    const auto *X = cast<CmpFormula>(F);
    printTerm(X->lhs(), Out);
    Out += cmpOpName(X->op());
    printTerm(X->rhs(), Out);
    return;
  }
  case Formula::FK_RecPred: {
    const auto *X = cast<RecPredFormula>(F);
    Out += X->def()->Name;
    printRecSuffix(X->time(), Out);
    printArgs(X->arg(), X->stopArgs(), Out);
    return;
  }
  case Formula::FK_And:
  case Formula::FK_Or:
  case Formula::FK_Sep: {
    const auto *X = cast<NaryFormula>(F);
    int MyPrec = F->kind() == Formula::FK_Or ? 1 : 2;
    const char *Sep = F->kind() == Formula::FK_Or  ? " || "
                      : F->kind() == Formula::FK_And ? " && "
                                                     : " * ";
    bool Paren = MyPrec < Prec;
    if (Paren)
      Out += '(';
    bool First = true;
    for (const Formula *Op : X->operands()) {
      if (!First)
        Out += Sep;
      First = false;
      printFormula(Op, Out, MyPrec + 1);
    }
    if (Paren)
      Out += ')';
    return;
  }
  case Formula::FK_Not: {
    Out += "!(";
    printFormula(cast<NotFormula>(F)->operand(), Out, 0);
    Out += ')';
    return;
  }
  case Formula::FK_FieldUpdate: {
    const auto *X = cast<FieldUpdateFormula>(F);
    Out += X->field();
    Out += '@';
    Out += std::to_string(X->toVersion());
    Out += " = store(";
    Out += X->field();
    Out += '@';
    Out += std::to_string(X->fromVersion());
    Out += ", ";
    printTerm(X->base(), Out);
    Out += ", ";
    printTerm(X->value(), Out);
    Out += ')';
    return;
  }
  }
}

std::string dryad::print(const Term *T) {
  std::string Out;
  printTerm(T, Out);
  return Out;
}

std::string dryad::print(const Formula *F) {
  std::string Out;
  printFormula(F, Out, 0);
  return Out;
}

std::string dryad::print(const RecDef &Def) {
  std::string Out;
  Out += Def.isPredicate() ? "pred " : "func ";
  Out += Def.Name;
  Out += '[';
  for (size_t I = 0; I != Def.PtrFields.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Def.PtrFields[I];
  }
  if (!Def.StopParams.empty()) {
    Out += "; ";
    for (size_t I = 0; I != Def.StopParams.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Def.StopParams[I];
    }
  }
  Out += "](";
  Out += Def.ArgName;
  Out += ')';
  if (!Def.isPredicate()) {
    Out += " : ";
    Out += sortName(Def.Result);
  }
  Out += " :=";
  if (Def.isPredicate()) {
    Out += ' ';
    Out += print(Def.PredBody);
    return Out;
  }
  for (const RecDef::Case &C : Def.Cases) {
    Out += "\n  ";
    if (C.Guard) {
      Out += "case ";
      Out += print(C.Guard);
      Out += " -> ";
    } else {
      Out += "default -> ";
    }
    Out += print(C.Value);
    Out += ';';
  }
  return Out;
}
